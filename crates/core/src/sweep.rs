//! Sweep execution: expands a [`StudyConfig`] into characterization jobs,
//! fans them out lock-free across worker threads, and evaluates every array
//! against every traffic pattern in parallel.
//!
//! # Engine design
//!
//! The hot path is organized around four ideas:
//!
//! 1. **Shared DSE across targets, with branch-and-bound pruning.** One
//!    job per `(cell, capacity, bits_per_cell)` — not per target. Each job
//!    runs a single shared design-space pass which walks the candidate
//!    organizations once, in deterministic order, and keeps the best
//!    design under *every* optimization target by scoring lightweight
//!    bank metrics in place (only winners are materialized into full
//!    records) — skipping characterization entirely for candidates whose
//!    provably-sound score bounds (`nvmx_nvsim::bounds`) cannot beat any
//!    incumbent. An N-target study therefore does ~1/N of the subarray
//!    work the naive per-target expansion (kept in [`baseline`])
//!    performs, and only a small fraction of that after pruning.
//! 2. **Memoized subarray physics across jobs.** Subarray characterization
//!    depends on `(cell, node, geometry, depth)` but **not** on capacity,
//!    word width, or target, so a study-wide
//!    [`SubarrayCache`] (sharded, read-mostly) computes
//!    each unique geometry once; every additional capacity in the study
//!    reuses most of the previous capacities' physics. Cached and uncached
//!    runs ([`run_study_uncached`]) are bit-identical.
//! 3. **Lock-free fan-out.** Jobs live in an immutable pre-expanded slice;
//!    workers claim indices with a single shared atomic counter and write
//!    results into per-job slots. No queue mutex, no result-vector mutex,
//!    and the output order is fixed by the job order rather than by worker
//!    interleaving — determinism by construction, with no post-hoc sort of
//!    completion order. Jobs borrow the resolved [`CellDefinition`]s
//!    instead of cloning them.
//! 4. **Batched structure-of-arrays evaluation.** The resolved traffic
//!    set is transposed once into a columnar
//!    [`TrafficGrid`] and each array is compiled once into an
//!    [`EvalKernel`]; workers then claim whole arrays and one
//!    [`EvalKernel::apply_batch_with`] computes every traffic lane in a
//!    single pass over contiguous lanes — with the per-word-width access
//!    rates ([`RateLanes`]) derived once per study and shared across
//!    kernels. A claim fills its `traffic.len()` consecutive slots of the
//!    flattened `arrays × traffic` index space, so slot (and stream)
//!    order is identical to the scalar per-pair path, which is kept as
//!    the PR-5 reference ([`run_study_pr5`]). Each [`Evaluation`] holds
//!    `Arc<ArrayCharacterization>` + `Arc<TrafficPattern>`, so the
//!    fan-out applies kernels and clones pointers, never records.
//! 5. **Streaming by slot order.** While workers fill slots, the calling
//!    thread walks them in index order and pushes each completed
//!    characterization/evaluation to a
//!    [`ResultSink`] — results can leave the
//!    process while the sweep is still running, and the event order is
//!    deterministic by the same argument as the result order. The batch
//!    entry points below are the streaming engine with a
//!    [`NullSink`] in place of live output.
//!
//! Jobs and targets are expanded in the legacy report order (cell name,
//! capacity, programming depth, then target label), so `arrays` and
//! `evaluations` in [`StudyResult`] are byte-identical to the historical
//! mutex-queue + sort engine — [`baseline`] exists to prove exactly that
//! in tests and benches. `skipped` carries the same entries but in
//! deterministic job order; the old engine recorded skips in worker
//! completion order, which was never deterministic to begin with.

use crate::config::{StudyConfig, UnknownNameError};
use crate::eval::{evaluate_shared_traffic, EvalKernel, Evaluation, RateLanes};
use crate::stream::{NullSink, ResultSink, StudyEvent, StudyStats};
use nvmx_celldb::CellDefinition;
use nvmx_nvsim::{
    characterize_targets, characterize_targets_cached, ArrayCharacterization, ArrayConfig,
    CharacterizationError, IncumbentStore, OptimizationTarget, SubarrayCache,
};
use nvmx_workloads::TrafficGrid;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Outcome of a study run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyResult {
    /// Study name (from the config).
    pub name: String,
    /// Every successfully characterized array design point.
    pub arrays: Vec<ArrayCharacterization>,
    /// Every `(array, traffic)` evaluation.
    pub evaluations: Vec<Evaluation>,
    /// Design points that could not be characterized, with reasons
    /// (e.g. SLC-only cells requested at MLC depth).
    pub skipped: Vec<(String, String)>,
}

/// Errors from running a study.
#[derive(Debug)]
pub enum StudyError {
    /// A model/graph name in the traffic spec did not resolve.
    UnknownName(UnknownNameError),
    /// The cell selection resolved to nothing.
    NoCells,
    /// The traffic spec resolved to nothing.
    NoTraffic,
    /// A [`ResultSink`] failed while consuming the event stream; the study
    /// was aborted at that point.
    Sink(std::io::Error),
    /// The persistent characterization store could not be opened. Load and
    /// publish failures never surface here — they degrade to recompute —
    /// but an unopenable store directory is a config error worth failing
    /// loudly on.
    Store(std::io::Error),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownName(e) => write!(f, "{e}"),
            Self::NoCells => write!(f, "cell selection resolved to no cells"),
            Self::NoTraffic => write!(f, "traffic specification resolved to no patterns"),
            Self::Sink(e) => write!(f, "result sink failed: {e}"),
            Self::Store(e) => write!(f, "characterization store failed to open: {e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sink(e) | Self::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnknownNameError> for StudyError {
    fn from(e: UnknownNameError) -> Self {
        Self::UnknownName(e)
    }
}

impl From<std::io::Error> for StudyError {
    fn from(e: std::io::Error) -> Self {
        Self::Sink(e)
    }
}

/// One shared-DSE characterization job: a `(cell, capacity, bits_per_cell)`
/// point covering *all* optimization targets at once. Cells are borrowed
/// from the resolved selection — jobs are cheap index records, not owners.
struct Job<'a> {
    cell: &'a CellDefinition,
    config: ArrayConfig,
}

/// Expands the study into shared-DSE jobs, in report order (cell name,
/// capacity, programming depth). Combined with the label-sorted target
/// list, slot order equals the legacy sorted output order, so no
/// completion-order sort is ever needed.
fn expand_jobs<'a>(
    study: &StudyConfig,
    cells: &'a [CellDefinition],
    targets: &[OptimizationTarget],
) -> Vec<Job<'a>> {
    let mut order: Vec<&CellDefinition> = cells.iter().collect();
    order.sort_by(|a, b| a.name.cmp(&b.name));
    let mut capacities = study.array.capacities();
    capacities.sort_unstable();
    let mut depths = study.array.bits_per_cell.clone();
    depths.sort_unstable();
    let mut jobs = Vec::new();
    if targets.is_empty() {
        return jobs;
    }
    for cell in order {
        for &capacity in &capacities {
            for &bits_per_cell in &depths {
                jobs.push(Job {
                    cell,
                    config: ArrayConfig {
                        capacity,
                        word_bits: study.array.word_bits,
                        node: study.array.node_for(cell),
                        bits_per_cell,
                        target: targets[0],
                    },
                });
            }
        }
    }
    jobs
}

/// The per-job result slot: every target's winning design, or the error
/// (reported once per target for parity with the per-target engine).
type JobOutcome = Result<Vec<ArrayCharacterization>, (String, CharacterizationError)>;

/// Characterization jobs are coarse (one job is a full DSE pass), so
/// workers claim them one at a time; evaluations are tiny, so workers
/// claim them in chunks to keep the shared counter off the critical path.
///
/// The chunk scales with the product size: at campaign scale (tens of
/// thousands of kernel applications, each tens of nanoseconds) a fixed
/// small chunk would put the shared `fetch_add` back on the critical path,
/// while a tiny study must not hand one worker the whole product. Aim for
/// several chunks per worker, floored at 64 pairs and capped at 4096.
/// Chunking only changes who computes a slot, never what lands in it, so
/// results are identical for any chunk size.
fn eval_chunk(pairs: usize, workers: usize) -> usize {
    (pairs / (workers * 8).max(1)).clamp(64, 4096)
}

/// Caps the worker count at the request, the number of claimable items,
/// and the machine's available parallelism — extra workers beyond any of
/// those only add spawn cost and scheduler churn, never throughput.
/// Output is index-addressed, so the worker count never affects results.
fn clamp_workers(threads: usize, items: usize) -> usize {
    let cores =
        std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
    threads.clamp(1, 32).min(items.max(1)).min(cores)
}

/// Which design-space pass the characterization workers run. The variants
/// are observationally identical — every path returns bit-identical
/// results — and exist so the cache can be turned off (regression proofs,
/// benches) or replaced with the PR-1 materializing pass (benches only).
#[derive(Clone, Copy)]
enum DsePath<'c> {
    /// Branch-and-bound pruned scan with subarray physics memoized in a
    /// shared [`SubarrayCache`], optionally seeding each target's
    /// incumbents from a prior study's recorded winners
    /// ([`IncumbentStore`]); evaluations run batched over the
    /// [`TrafficGrid`] lanes. The production path.
    Cached {
        cache: &'c SubarrayCache,
        seeds: Option<&'c IncumbentStore>,
    },
    /// Pruned scan, every surviving geometry characterized from scratch;
    /// batched evaluations.
    Uncached,
    /// The PR-5 reference pass: identical cached pruned scan, but with
    /// per-pair scalar kernel applications instead of batched lanes.
    /// Benches measure this PR's evaluation stage against it.
    CachedScalarEval(&'c SubarrayCache),
    /// The PR 2–4 reference pass: exhaustive (unpruned) cached scan that
    /// materializes every candidate bank, with per-pair `evaluate_shared`
    /// evaluations. Benches measure this PR against it.
    CachedUnpruned(&'c SubarrayCache),
    /// The PR-1 reference pass: packages every candidate before scoring
    /// and deep-copies the array record into every evaluation.
    Pr1Materialized,
}

/// Default worker count for every batch/streaming entry point that does
/// not take an explicit thread budget: one per available CPU, capped
/// at 16.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
}

/// Arms a poison flag if the owning worker unwinds, so the streaming
/// drainer never spins forever on a slot its (dead) worker will never
/// fill. The panic itself still propagates: the drainer stops waiting,
/// the scope joins its threads, and `std::thread::scope` re-raises the
/// worker's panic — exactly the pre-streaming batch behavior.
pub(crate) struct PanicFlag<'a>(pub(crate) &'a AtomicBool);

impl Drop for PanicFlag<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Blocks until `slot` is filled by a worker, yielding the timeslice while
/// it waits; `None` when a worker died and the slot may never fill. The
/// drainer walks slots in index order, and workers claim jobs in the same
/// order, so the wait is almost always short — but correctness never
/// depends on that.
pub(crate) fn wait_filled<'s, T>(slot: &'s OnceLock<T>, poisoned: &AtomicBool) -> Option<&'s T> {
    loop {
        if let Some(value) = slot.get() {
            return Some(value);
        }
        if poisoned.load(Ordering::Acquire) {
            return None;
        }
        std::thread::yield_now();
    }
}

fn run_study_impl(
    study: &StudyConfig,
    threads: usize,
    path: DsePath<'_>,
    sink: &mut dyn ResultSink,
) -> Result<StudyResult, StudyError> {
    let cells = study.cells.resolve();
    if cells.is_empty() {
        return Err(StudyError::NoCells);
    }
    let traffic = study.traffic.resolve()?;
    if traffic.is_empty() {
        return Err(StudyError::NoTraffic);
    }
    // Report order: targets by label, matching the legacy sort key.
    let mut targets = study.array.targets.clone();
    targets.sort_by_key(|target| target.label());

    let jobs = expand_jobs(study, &cells, &targets);
    sink.on_event(&StudyEvent::StudyStarted {
        name: &study.name,
        cells: cells.len(),
        jobs: jobs.len(),
        targets: targets.len(),
        traffic: traffic.len(),
    })?;
    let cache_before = match path {
        DsePath::Cached { cache, .. }
        | DsePath::CachedUnpruned(cache)
        | DsePath::CachedScalarEval(cache) => Some((cache, cache.stats())),
        _ => None,
    };

    let slots: Vec<OnceLock<JobOutcome>> = jobs.iter().map(|_| OnceLock::new()).collect();
    let next_job = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    let workers = clamp_workers(threads, jobs.len());
    let mut sink_status: std::io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _flag = PanicFlag(&poisoned);
                loop {
                    let index = next_job.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let outcome = match path {
                        DsePath::Cached { cache, seeds } => {
                            nvmx_nvsim::dse::optimize_targets_seeded(
                                job.cell,
                                &job.config,
                                &targets,
                                Some(cache),
                                seeds,
                            )
                        }
                        DsePath::CachedScalarEval(cache) => {
                            characterize_targets_cached(job.cell, &job.config, &targets, cache)
                        }
                        DsePath::Uncached => characterize_targets(job.cell, &job.config, &targets),
                        DsePath::CachedUnpruned(cache) => {
                            nvmx_nvsim::dse::optimize_targets_unpruned(
                                job.cell,
                                &job.config,
                                &targets,
                                Some(cache),
                            )
                        }
                        DsePath::Pr1Materialized => nvmx_nvsim::dse::optimize_targets_materialized(
                            job.cell,
                            &job.config,
                            &targets,
                        ),
                    }
                    .map_err(|e| (job.cell.name.clone(), e));
                    slots[index].set(outcome).expect("job slot written twice");
                }
            });
        }
        // Stream the slots in index order as the workers fill them: event
        // order is fixed by job order, never by worker interleaving.
        // Passive sinks (the batch entry points) skip the drain entirely —
        // the calling thread blocks in the scope join like the
        // pre-streaming engine instead of spinning alongside the workers.
        if sink.is_passive() {
            return;
        }
        let mut emitted = 0usize;
        'drain: for slot in &slots {
            let Some(outcome) = wait_filled(slot, &poisoned) else {
                // A worker died; stop draining so the scope can join and
                // re-raise its panic.
                break 'drain;
            };
            match outcome {
                Ok(designs) => {
                    for array in designs {
                        sink_status = sink.on_event(&StudyEvent::ArrayCharacterized {
                            index: emitted,
                            array,
                        });
                        emitted += 1;
                        if sink_status.is_err() {
                            break 'drain;
                        }
                    }
                }
                Err((cell, error)) => {
                    let reason = error.to_string();
                    for &target in &targets {
                        sink_status = sink.on_event(&StudyEvent::DesignSkipped {
                            cell,
                            target,
                            reason: &reason,
                        });
                        if sink_status.is_err() {
                            break 'drain;
                        }
                    }
                }
            }
        }
        if sink_status.is_err() {
            // The study is aborting: park the claim counter past the end so
            // workers stop picking up new jobs instead of computing results
            // nobody will read.
            next_job.store(jobs.len(), Ordering::Relaxed);
        }
    });
    sink_status?;

    let mut arrays = Vec::with_capacity(jobs.len() * targets.len());
    let mut skipped = Vec::new();
    for slot in slots {
        match slot.into_inner().expect("all job slots filled") {
            Ok(designs) => arrays.extend(designs),
            Err((cell, error)) => {
                // One skipped record per target: parity with the per-target
                // engine, which failed each target's job individually.
                let reason = error.to_string();
                skipped.extend(targets.iter().map(|_| (cell.clone(), reason.clone())));
            }
        }
    }

    // The production path applies precomputed kernels batched over the
    // traffic-grid lanes; the PR-5 reference applies the same kernels per
    // pair, the PR 2–4 reference reproduces the per-pair `evaluate_shared`
    // cost, and the PR-1 reference deep-copies the characterization record
    // into every evaluation — so benches measure each engine as it shipped.
    let eval_mode = match path {
        DsePath::Cached { .. } | DsePath::Uncached => EvalMode::Batched,
        DsePath::CachedScalarEval(_) => EvalMode::Kernels,
        DsePath::CachedUnpruned(_) => EvalMode::SharedPerPair,
        DsePath::Pr1Materialized => EvalMode::DeepCopy,
    };
    let evaluations = evaluate_all(&arrays, &traffic, threads, eval_mode, sink)?;

    // Study-wide winner per target: the feasible evaluation with the lowest
    // total power, first-in-stream-order on ties.
    for &target in &targets {
        let mut winner: Option<&Evaluation> = None;
        for eval in &evaluations {
            if eval.array.target != target || !eval.is_feasible() {
                continue;
            }
            let better = match winner {
                None => true,
                Some(best) => eval.total_power().value() < best.total_power().value(),
            };
            if better {
                winner = Some(eval);
            }
        }
        if let Some(winner) = winner {
            sink.on_event(&StudyEvent::TargetWinnerSelected { target, winner })?;
        }
    }

    // Publish newly characterized slabs back to the persistent store (a
    // no-op without one). Best effort: the store only shapes future runs'
    // work, never this run's results, so publish failures are not study
    // failures.
    if let Some((cache, _)) = cache_before {
        let _ = cache.flush_store();
    }

    let stats = StudyStats {
        jobs: jobs.len(),
        targets: targets.len(),
        traffic_patterns: traffic.len(),
        arrays: arrays.len(),
        evaluations: evaluations.len(),
        skipped: skipped.len(),
        cache: cache_before.map(|(cache, before)| cache.stats().since(before)),
    };
    sink.on_event(&StudyEvent::StudyFinished {
        name: &study.name,
        stats: &stats,
    })?;

    Ok(StudyResult {
        name: study.name.clone(),
        arrays,
        evaluations,
        skipped,
    })
}

/// Runs a full study: characterize every design point, evaluate against
/// every traffic pattern.
///
/// Characterization fans out lock-free across `threads` workers (atomic
/// index over a pre-expanded job slice, results into pre-allocated slots),
/// with one shared design-space pass covering all optimization targets per
/// `(cell, capacity, bits_per_cell)` point and a study-private
/// [`SubarrayCache`] sharing subarray physics across the capacity axis. The
/// evaluation product is then fanned out over the same pool. Output order
/// is deterministic regardless of `threads`.
///
/// # Errors
///
/// Returns [`StudyError`] when the config resolves to no cells, no traffic,
/// or references unknown model names.
pub fn run_study_with_threads(
    study: &StudyConfig,
    threads: usize,
) -> Result<StudyResult, StudyError> {
    let cache = SubarrayCache::new();
    run_study_impl(
        study,
        threads,
        DsePath::Cached {
            cache: &cache,
            seeds: None,
        },
        &mut NullSink,
    )
}

/// The streaming engine entry used by
/// [`StudyExecutor`](crate::stream::StudyExecutor): identical to
/// [`run_study_with_cache`] but pushing every event to `sink`.
pub(crate) fn run_streaming_with_cache(
    study: &StudyConfig,
    threads: usize,
    cache: &SubarrayCache,
    sink: &mut dyn ResultSink,
) -> Result<StudyResult, StudyError> {
    run_study_impl(study, threads, DsePath::Cached { cache, seeds: None }, sink)
}

/// [`run_streaming_with_cache`] with cross-study incumbent seeding: each
/// job's branch-and-bound scan starts from the winners a prior identical
/// design point recorded into `seeds`, and records its own back. Results
/// are byte-identical to the unseeded engine; only the prune rate changes.
pub(crate) fn run_streaming_seeded(
    study: &StudyConfig,
    threads: usize,
    cache: &SubarrayCache,
    seeds: &IncumbentStore,
    sink: &mut dyn ResultSink,
) -> Result<StudyResult, StudyError> {
    run_study_impl(
        study,
        threads,
        DsePath::Cached {
            cache,
            seeds: Some(seeds),
        },
        sink,
    )
}

/// [`run_study_with_threads`] with a caller-owned [`SubarrayCache`].
///
/// Use this to share one cache across several studies that sweep the same
/// cells (e.g. a capacity-axis series, or repeated runs of one config), or
/// to observe [`SubarrayCache::stats`] after a run. Results are
/// bit-identical to every other engine path.
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
pub fn run_study_with_cache(
    study: &StudyConfig,
    threads: usize,
    cache: &SubarrayCache,
) -> Result<StudyResult, StudyError> {
    run_study_impl(
        study,
        threads,
        DsePath::Cached { cache, seeds: None },
        &mut NullSink,
    )
}

/// [`run_study_with_cache`] with the cache backed by the persistent
/// characterization store at `store_dir` (`nvmx_nvsim::store`): L1 slab
/// misses consult the on-disk L2 before characterizing, and newly
/// characterized slabs are published back when the study finishes. Results
/// are byte-identical to every other engine path — a corrupt, version-
/// skewed, or colliding store degrades to recomputation, never to wrong
/// data.
///
/// # Errors
///
/// [`StudyError::Store`] when the store directory cannot be created, plus
/// the same conditions as [`run_study_with_threads`].
pub fn run_study_with_store(
    study: &StudyConfig,
    threads: usize,
    store_dir: impl Into<std::path::PathBuf>,
) -> Result<StudyResult, StudyError> {
    let cache = SubarrayCache::with_store(store_dir).map_err(StudyError::Store)?;
    run_study_with_cache(study, threads, &cache)
}

/// [`run_study_with_cache`] with cross-study incumbent seeding.
///
/// Each job's branch-and-bound scan starts from the final incumbents a
/// prior *identical* design point (same cell, node, programming depth,
/// capacity, and word width) recorded into `seeds`, and records its own
/// winners back after a successful pass. Seeding only tightens the score
/// bounds, so results are byte-identical to [`run_study_with_cache`] for
/// any thread count (proven in `tests/prune_kernel_equivalence.rs`); warm
/// studies simply prune more candidates — watch the delta with
/// [`SubarrayCache::stats`] and [`IncumbentStore::stats`].
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
pub fn run_study_seeded(
    study: &StudyConfig,
    threads: usize,
    cache: &SubarrayCache,
    seeds: &IncumbentStore,
) -> Result<StudyResult, StudyError> {
    run_study_impl(
        study,
        threads,
        DsePath::Cached {
            cache,
            seeds: Some(seeds),
        },
        &mut NullSink,
    )
}

/// [`run_study_with_threads`] with subarray memoization disabled — every
/// job re-characterizes its geometries from scratch. Exists so tests and
/// benches can prove cache-on/cache-off equivalence and measure the win.
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
pub fn run_study_uncached(study: &StudyConfig, threads: usize) -> Result<StudyResult, StudyError> {
    run_study_impl(study, threads, DsePath::Uncached, &mut NullSink)
}

/// The PR-1 engine: shared DSE and lock-free fan-out, but with the
/// materializing per-candidate scoring pass and no subarray cache. Kept so
/// `bench_sweep` measures this PR against the engine it replaced. Not part
/// of the supported API.
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
#[doc(hidden)]
pub fn run_study_pr1(study: &StudyConfig, threads: usize) -> Result<StudyResult, StudyError> {
    run_study_impl(study, threads, DsePath::Pr1Materialized, &mut NullSink)
}

/// The PR 2–4 engine: exhaustive (unpruned) cached scan materializing
/// every candidate bank, with per-pair `evaluate_shared` evaluations —
/// no branch-and-bound pruning, no precomputed kernels. Kept so tests can
/// prove the pruned+kernel engine byte-identical and `bench_sweep` can
/// measure this PR against the engine it replaced. Not part of the
/// supported API.
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
#[doc(hidden)]
pub fn run_study_pr4(study: &StudyConfig, threads: usize) -> Result<StudyResult, StudyError> {
    let cache = SubarrayCache::new();
    run_study_impl(
        study,
        threads,
        DsePath::CachedUnpruned(&cache),
        &mut NullSink,
    )
}

/// The PR-5 engine: identical cached branch-and-bound scan, but with
/// per-pair scalar kernel applications instead of the batched traffic-grid
/// path. Kept so tests can prove the batched engine byte-identical and
/// `bench_sweep` can measure this PR's evaluation stage against the engine
/// it replaced. Not part of the supported API.
///
/// # Errors
///
/// Same conditions as [`run_study_with_threads`].
#[doc(hidden)]
pub fn run_study_pr5(study: &StudyConfig, threads: usize) -> Result<StudyResult, StudyError> {
    let cache = SubarrayCache::new();
    run_study_impl(
        study,
        threads,
        DsePath::CachedScalarEval(&cache),
        &mut NullSink,
    )
}

/// How the evaluation stage computes each `(array, traffic)` pair. All
/// modes produce bit-identical [`Evaluation`]s (proven in
/// `tests/prune_kernel_equivalence.rs` and
/// `tests/batch_eval_equivalence.rs`); they differ only in how much
/// per-pair work they repeat, so the reference engines keep their honest
/// cost profiles in benches.
#[derive(Clone, Copy)]
enum EvalMode {
    /// One [`EvalKernel`] per array plus one [`TrafficGrid`] per study;
    /// workers claim whole arrays and each claim computes every traffic
    /// lane in one [`EvalKernel::apply_batch_with`] streaming over the
    /// columnar lanes, with the per-word-width access rates
    /// ([`RateLanes`]) derived once and shared across kernels. The
    /// production path.
    Batched,
    /// One [`EvalKernel`] per array, built once; per pair a thin
    /// traffic-point application (the PR-5 profile).
    Kernels,
    /// [`evaluate_shared_traffic`] per pair: re-derives the per-array
    /// invariants every time (the PR 2–4 profile on today's shared-traffic
    /// types — strictly no slower than the engine as it shipped, so
    /// speedups measured against it are conservative).
    SharedPerPair,
    /// [`crate::eval::evaluate`] per pair: additionally deep-copies the
    /// array record into every evaluation (the PR-1 profile).
    DeepCopy,
}

/// Evaluates the full `arrays × traffic` product across the worker pool,
/// preserving the serial double-loop order and streaming each evaluation to
/// `sink` in that order as its slot completes.
///
/// Each array is wrapped in an [`Arc`] once and (in the production mode)
/// compiled into an [`EvalKernel`]; the parallel stage then clones a
/// pointer and applies the kernel per evaluation instead of deep-copying
/// the record or re-deriving its invariants.
fn evaluate_all(
    arrays: &[ArrayCharacterization],
    traffic: &[nvmx_workloads::TrafficPattern],
    threads: usize,
    mode: EvalMode,
    sink: &mut dyn ResultSink,
) -> Result<Vec<Evaluation>, std::io::Error> {
    let pairs = arrays.len() * traffic.len();
    if pairs == 0 {
        return Ok(Vec::new());
    }
    let shared: Vec<Arc<ArrayCharacterization>> = match mode {
        EvalMode::Batched | EvalMode::Kernels | EvalMode::SharedPerPair => {
            arrays.iter().map(|array| Arc::new(array.clone())).collect()
        }
        EvalMode::DeepCopy => Vec::new(),
    };
    let kernels: Vec<EvalKernel> = match mode {
        EvalMode::Batched | EvalMode::Kernels => shared.iter().map(EvalKernel::new).collect(),
        _ => Vec::new(),
    };
    // The Arc-based modes share the traffic patterns — an evaluation then
    // costs two Arc clones instead of a string-owning deep copy.
    let shared_traffic: Vec<Arc<nvmx_workloads::TrafficPattern>> = match mode {
        EvalMode::Batched | EvalMode::Kernels | EvalMode::SharedPerPair => {
            traffic.iter().map(|t| Arc::new(t.clone())).collect()
        }
        EvalMode::DeepCopy => Vec::new(),
    };
    // Batched mode transposes the traffic set into columnar lanes once per
    // study, and derives each distinct word width's access-rate lanes once
    // — shared by every kernel with that word width — instead of
    // re-deriving the rates per (array, pattern) pair.
    let grid = match mode {
        EvalMode::Batched => Some(TrafficGrid::from_shared(shared_traffic.clone())),
        _ => None,
    };
    let mut rate_sets: Vec<RateLanes> = Vec::new();
    let mut kernel_rates: Vec<usize> = Vec::new();
    if let Some(grid) = &grid {
        for kernel in &kernels {
            let slot = rate_sets
                .iter()
                .position(|rates| rates.word_bits() == kernel.word_bits())
                .unwrap_or_else(|| {
                    rate_sets.push(RateLanes::new(grid, kernel.word_bits()));
                    rate_sets.len() - 1
                });
            kernel_rates.push(slot);
        }
    }
    // Scalar modes fill one slot per (array, traffic) pair. Batched workers
    // claim whole arrays and publish the array's `traffic.len()` evaluations
    // as one batch — one synchronized store per array instead of one per
    // pair — and the drain walks batches array-major with lanes in traffic
    // order, so the evaluation (and therefore stream) order is identical to
    // the scalar modes.
    let slots: Vec<OnceLock<Evaluation>> = match mode {
        EvalMode::Batched => Vec::new(),
        _ => (0..pairs).map(|_| OnceLock::new()).collect(),
    };
    let batch_slots: Vec<OnceLock<Vec<Evaluation>>> = match mode {
        EvalMode::Batched => (0..arrays.len()).map(|_| OnceLock::new()).collect(),
        _ => Vec::new(),
    };
    let (claims, chunk) = match mode {
        EvalMode::Batched => (arrays.len(), 1),
        _ => {
            let chunk = eval_chunk(pairs, clamp_workers(threads, pairs));
            (pairs, chunk)
        }
    };
    let next_claim = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let workers = clamp_workers(threads, claims.div_ceil(chunk));
    let mut sink_status: std::io::Result<()> = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _flag = PanicFlag(&poisoned);
                loop {
                    let start = next_claim.fetch_add(chunk, Ordering::Relaxed);
                    if start >= claims {
                        break;
                    }
                    for index in start..(start + chunk).min(claims) {
                        match mode {
                            EvalMode::Batched => {
                                let grid = grid.as_ref().expect("batched mode builds a grid");
                                let batch = kernels[index]
                                    .apply_batch_with(grid, &rate_sets[kernel_rates[index]]);
                                batch_slots[index]
                                    .set(batch)
                                    .expect("evaluation batch written twice");
                            }
                            EvalMode::Kernels => {
                                let evaluation = kernels[index / traffic.len()]
                                    .apply(&shared_traffic[index % traffic.len()]);
                                slots[index]
                                    .set(evaluation)
                                    .expect("evaluation slot written twice");
                            }
                            EvalMode::SharedPerPair => {
                                let evaluation = evaluate_shared_traffic(
                                    &shared[index / traffic.len()],
                                    &shared_traffic[index % traffic.len()],
                                );
                                slots[index]
                                    .set(evaluation)
                                    .expect("evaluation slot written twice");
                            }
                            EvalMode::DeepCopy => {
                                let evaluation = crate::eval::evaluate(
                                    &arrays[index / traffic.len()],
                                    &traffic[index % traffic.len()],
                                );
                                slots[index]
                                    .set(evaluation)
                                    .expect("evaluation slot written twice");
                            }
                        }
                    }
                }
            });
        }
        // Passive sinks skip the drain, as in the characterization stage.
        if sink.is_passive() {
            return;
        }
        match mode {
            EvalMode::Batched => {
                'drain: for (array_index, slot) in batch_slots.iter().enumerate() {
                    let Some(batch) = wait_filled(slot, &poisoned) else {
                        // A worker died; let the scope join and re-raise
                        // its panic.
                        break;
                    };
                    let base = array_index * traffic.len();
                    for (lane, evaluation) in batch.iter().enumerate() {
                        sink_status = sink.on_event(&StudyEvent::EvaluationProduced {
                            index: base + lane,
                            evaluation,
                        });
                        if sink_status.is_err() {
                            // Park the claim counter past the end so workers
                            // stop evaluating work nobody will read.
                            next_claim.store(claims, Ordering::Relaxed);
                            break 'drain;
                        }
                    }
                }
            }
            _ => {
                for (index, slot) in slots.iter().enumerate() {
                    let Some(evaluation) = wait_filled(slot, &poisoned) else {
                        // A worker died; let the scope join and re-raise
                        // its panic.
                        break;
                    };
                    sink_status =
                        sink.on_event(&StudyEvent::EvaluationProduced { index, evaluation });
                    if sink_status.is_err() {
                        // Park the claim counter past the end so workers stop
                        // evaluating work nobody will read.
                        next_claim.store(claims, Ordering::Relaxed);
                        break;
                    }
                }
            }
        }
    });
    sink_status?;
    Ok(match mode {
        EvalMode::Batched => batch_slots
            .into_iter()
            .flat_map(|slot| slot.into_inner().expect("all evaluation batches filled"))
            .collect(),
        _ => slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all evaluation slots filled"))
            .collect(),
    })
}

/// Runs a study with a worker per available CPU (capped at 16).
///
/// # Errors
///
/// See [`run_study_with_threads`].
pub fn run_study(study: &StudyConfig) -> Result<StudyResult, StudyError> {
    run_study_with_threads(study, default_workers())
}

/// The pre-overhaul reference engine: one job per `(cell, capacity,
/// bits_per_cell, target)`, re-running the full DSE for every target, with
/// a mutex-guarded queue and a completion-order sort.
///
/// Kept (on `std::sync` primitives) so tests can prove the shared-DSE
/// engine produces byte-identical [`StudyResult`]s and benches can measure
/// the speedup against a faithful baseline. Not part of the supported API.
#[doc(hidden)]
pub mod baseline {
    use super::{StudyError, StudyResult};
    use crate::config::StudyConfig;
    use crate::eval::evaluate;
    use nvmx_celldb::CellDefinition;
    use nvmx_nvsim::{characterize, ArrayCharacterization, ArrayConfig, CharacterizationError};
    use std::sync::Mutex;

    struct Job {
        cell: CellDefinition,
        config: ArrayConfig,
    }

    fn expand_jobs(study: &StudyConfig, cells: &[CellDefinition]) -> Vec<Job> {
        let mut jobs = Vec::new();
        for cell in cells {
            for capacity in study.array.capacities() {
                for &bits_per_cell in &study.array.bits_per_cell {
                    for &target in &study.array.targets {
                        jobs.push(Job {
                            cell: cell.clone(),
                            config: ArrayConfig {
                                capacity,
                                word_bits: study.array.word_bits,
                                node: study.array.node_for(cell),
                                bits_per_cell,
                                target,
                            },
                        });
                    }
                }
            }
        }
        jobs
    }

    /// Reference implementation of
    /// [`run_study_with_threads`](super::run_study_with_threads).
    ///
    /// # Errors
    ///
    /// Same conditions as the main engine.
    pub fn run_study_with_threads(
        study: &StudyConfig,
        threads: usize,
    ) -> Result<StudyResult, StudyError> {
        let cells = study.cells.resolve();
        if cells.is_empty() {
            return Err(StudyError::NoCells);
        }
        let traffic = study.traffic.resolve()?;
        if traffic.is_empty() {
            return Err(StudyError::NoTraffic);
        }

        let queue = Mutex::new(expand_jobs(study, &cells));
        type Done = Vec<Result<ArrayCharacterization, (String, CharacterizationError)>>;
        let done: Mutex<Done> = Mutex::new(Vec::new());

        let workers = threads.clamp(1, 32);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = { queue.lock().expect("queue poisoned").pop() };
                    let Some(job) = job else { break };
                    let result = characterize(&job.cell, &job.config)
                        .map_err(|e| (job.cell.name.clone(), e));
                    done.lock().expect("results poisoned").push(result);
                });
            }
        });

        let mut arrays = Vec::new();
        let mut skipped = Vec::new();
        for outcome in done.into_inner().expect("results poisoned") {
            match outcome {
                Ok(array) => arrays.push(array),
                Err((cell, error)) => skipped.push((cell, error.to_string())),
            }
        }
        // Deterministic output order regardless of worker interleaving.
        arrays.sort_by(|a, b| {
            (
                a.cell_name.as_str(),
                a.capacity,
                a.bits_per_cell,
                a.target.label(),
            )
                .cmp(&(
                    b.cell_name.as_str(),
                    b.capacity,
                    b.bits_per_cell,
                    b.target.label(),
                ))
        });

        let mut evaluations = Vec::with_capacity(arrays.len() * traffic.len());
        for array in &arrays {
            for pattern in &traffic {
                evaluations.push(evaluate(array, pattern));
            }
        }

        Ok(StudyResult {
            name: study.name.clone(),
            arrays,
            evaluations,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArraySettings, CellSelection, Constraints, TrafficSpec};
    use nvmx_celldb::TechnologyClass;
    use nvmx_units::BitsPerCell;

    fn small_study() -> StudyConfig {
        StudyConfig {
            name: "test".into(),
            cells: CellSelection {
                technologies: Some(vec![TechnologyClass::Stt, TechnologyClass::Rram]),
                reference_rram: false,
                sram_baseline: true,
                ..CellSelection::default()
            },
            array: ArraySettings {
                capacities_mib: vec![2],
                targets: vec![OptimizationTarget::ReadEdp],
                ..ArraySettings::default()
            },
            traffic: TrafficSpec::Explicit {
                patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
            },
            constraints: Constraints::default(),
            output: Default::default(),
            store: Default::default(),
        }
    }

    fn multi_target_study() -> StudyConfig {
        let mut study = small_study();
        study.array.targets = vec![
            OptimizationTarget::ReadEdp,
            OptimizationTarget::WriteEnergy,
            OptimizationTarget::Area,
        ];
        study
    }

    #[test]
    fn study_produces_arrays_and_evaluations() {
        let result = run_study_with_threads(&small_study(), 4).unwrap();
        // 2 classes × 2 flavors + SRAM = 5 arrays, 1 traffic pattern each.
        assert_eq!(result.arrays.len(), 5);
        assert_eq!(result.evaluations.len(), 5);
        assert!(result.skipped.is_empty());
    }

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let one = run_study_with_threads(&small_study(), 1).unwrap();
        let many = run_study_with_threads(&small_study(), 8).unwrap();
        let names = |r: &StudyResult| -> Vec<String> {
            r.arrays.iter().map(|a| a.cell_name.clone()).collect()
        };
        assert_eq!(names(&one), names(&many));
        assert_eq!(one.evaluations.len(), many.evaluations.len());
    }

    #[test]
    fn multi_target_output_matches_baseline_engine_exactly() {
        let study = multi_target_study();
        let shared = run_study_with_threads(&study, 4).unwrap();
        let reference = baseline::run_study_with_threads(&study, 1).unwrap();
        assert_eq!(shared.arrays, reference.arrays);
        assert_eq!(shared.evaluations, reference.evaluations);
        assert_eq!(shared.skipped, reference.skipped);
    }

    #[test]
    fn unsupported_mlc_lands_in_skipped() {
        let mut study = small_study();
        study.array.bits_per_cell = vec![BitsPerCell::Mlc2];
        let result = run_study_with_threads(&study, 2).unwrap();
        // SRAM cannot do MLC; the NVMs can.
        assert_eq!(result.skipped.len(), 1);
        assert!(result.skipped[0].0.contains("SRAM"));
        assert_eq!(result.arrays.len(), 4);
    }

    #[test]
    fn multi_target_skip_is_reported_per_target() {
        let mut study = multi_target_study();
        study.array.bits_per_cell = vec![BitsPerCell::Mlc2];
        let result = run_study_with_threads(&study, 4).unwrap();
        // SRAM fails once per target, like the per-target engine reported.
        assert_eq!(result.skipped.len(), 3);
        assert!(result.skipped.iter().all(|(cell, _)| cell.contains("SRAM")));
        assert_eq!(result.arrays.len(), 4 * 3);
    }

    #[test]
    fn empty_cell_selection_errors() {
        let mut study = small_study();
        study.cells = CellSelection {
            technologies: Some(vec![]),
            tentpoles: true,
            reference_rram: false,
            sram_baseline: false,
            back_gated_fefet: false,
            custom: vec![],
        };
        assert!(matches!(
            run_study_with_threads(&study, 2),
            Err(StudyError::NoCells)
        ));
    }
}
