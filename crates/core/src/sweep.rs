//! Sweep execution: expands a [`StudyConfig`] into characterization jobs,
//! runs them across worker threads, and evaluates every array against every
//! traffic pattern.

use crate::config::{StudyConfig, UnknownNameError};
use crate::eval::{evaluate, Evaluation};
use nvmx_celldb::CellDefinition;
use nvmx_nvsim::{characterize, ArrayCharacterization, ArrayConfig, CharacterizationError};
use parking_lot::Mutex;

/// Outcome of a study run.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Study name (from the config).
    pub name: String,
    /// Every successfully characterized array design point.
    pub arrays: Vec<ArrayCharacterization>,
    /// Every `(array, traffic)` evaluation.
    pub evaluations: Vec<Evaluation>,
    /// Design points that could not be characterized, with reasons
    /// (e.g. SLC-only cells requested at MLC depth).
    pub skipped: Vec<(String, String)>,
}

/// Errors from running a study.
#[derive(Debug)]
pub enum StudyError {
    /// A model/graph name in the traffic spec did not resolve.
    UnknownName(UnknownNameError),
    /// The cell selection resolved to nothing.
    NoCells,
    /// The traffic spec resolved to nothing.
    NoTraffic,
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownName(e) => write!(f, "{e}"),
            Self::NoCells => write!(f, "cell selection resolved to no cells"),
            Self::NoTraffic => write!(f, "traffic specification resolved to no patterns"),
        }
    }
}

impl std::error::Error for StudyError {}

impl From<UnknownNameError> for StudyError {
    fn from(e: UnknownNameError) -> Self {
        Self::UnknownName(e)
    }
}

/// One characterization job in the expanded sweep.
#[derive(Debug, Clone)]
struct Job {
    cell: CellDefinition,
    config: ArrayConfig,
}

fn expand_jobs(study: &StudyConfig, cells: &[CellDefinition]) -> Vec<Job> {
    let mut jobs = Vec::new();
    for cell in cells {
        for capacity in study.array.capacities() {
            for &bits_per_cell in &study.array.bits_per_cell {
                for &target in &study.array.targets {
                    jobs.push(Job {
                        cell: cell.clone(),
                        config: ArrayConfig {
                            capacity,
                            word_bits: study.array.word_bits,
                            node: study.array.node_for(cell),
                            bits_per_cell,
                            target,
                        },
                    });
                }
            }
        }
    }
    jobs
}

/// Runs a full study: characterize every design point, evaluate against
/// every traffic pattern.
///
/// Characterization jobs fan out across `threads` workers (the job list is
/// shared behind a [`parking_lot::Mutex`]); evaluation is cheap and runs
/// inline afterwards.
///
/// # Errors
///
/// Returns [`StudyError`] when the config resolves to no cells, no traffic,
/// or references unknown model names.
pub fn run_study_with_threads(
    study: &StudyConfig,
    threads: usize,
) -> Result<StudyResult, StudyError> {
    let cells = study.cells.resolve();
    if cells.is_empty() {
        return Err(StudyError::NoCells);
    }
    let traffic = study.traffic.resolve()?;
    if traffic.is_empty() {
        return Err(StudyError::NoTraffic);
    }

    let jobs = expand_jobs(study, &cells);
    let queue = Mutex::new(jobs);
    let done: Mutex<Vec<Result<ArrayCharacterization, (String, CharacterizationError)>>> =
        Mutex::new(Vec::new());

    let workers = threads.clamp(1, 32);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let job = { queue.lock().pop() };
                let Some(job) = job else { break };
                let result = characterize(&job.cell, &job.config)
                    .map_err(|e| (job.cell.name.clone(), e));
                done.lock().push(result);
            });
        }
    })
    .expect("sweep worker panicked");

    let mut arrays = Vec::new();
    let mut skipped = Vec::new();
    for outcome in done.into_inner() {
        match outcome {
            Ok(array) => arrays.push(array),
            Err((cell, error)) => skipped.push((cell, error.to_string())),
        }
    }
    // Deterministic output order regardless of worker interleaving.
    arrays.sort_by(|a, b| {
        (a.cell_name.as_str(), a.capacity, a.bits_per_cell, a.target.label())
            .cmp(&(b.cell_name.as_str(), b.capacity, b.bits_per_cell, b.target.label()))
    });

    let mut evaluations = Vec::with_capacity(arrays.len() * traffic.len());
    for array in &arrays {
        for pattern in &traffic {
            evaluations.push(evaluate(array, pattern));
        }
    }

    Ok(StudyResult { name: study.name.clone(), arrays, evaluations, skipped })
}

/// Runs a study with a worker per available CPU (capped at 16).
///
/// # Errors
///
/// See [`run_study_with_threads`].
pub fn run_study(study: &StudyConfig) -> Result<StudyResult, StudyError> {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(16));
    run_study_with_threads(study, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArraySettings, CellSelection, Constraints, TrafficSpec};
    use nvmx_celldb::TechnologyClass;
    use nvmx_nvsim::OptimizationTarget;
    use nvmx_units::BitsPerCell;

    fn small_study() -> StudyConfig {
        StudyConfig {
            name: "test".into(),
            cells: CellSelection {
                technologies: Some(vec![TechnologyClass::Stt, TechnologyClass::Rram]),
                reference_rram: false,
                sram_baseline: true,
                ..CellSelection::default()
            },
            array: ArraySettings {
                capacities_mib: vec![2],
                targets: vec![OptimizationTarget::ReadEdp],
                ..ArraySettings::default()
            },
            traffic: TrafficSpec::Explicit {
                patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
            },
            constraints: Constraints::default(),
        }
    }

    #[test]
    fn study_produces_arrays_and_evaluations() {
        let result = run_study_with_threads(&small_study(), 4).unwrap();
        // 2 classes × 2 flavors + SRAM = 5 arrays, 1 traffic pattern each.
        assert_eq!(result.arrays.len(), 5);
        assert_eq!(result.evaluations.len(), 5);
        assert!(result.skipped.is_empty());
    }

    #[test]
    fn output_order_is_deterministic_across_thread_counts() {
        let one = run_study_with_threads(&small_study(), 1).unwrap();
        let many = run_study_with_threads(&small_study(), 8).unwrap();
        let names = |r: &StudyResult| -> Vec<String> {
            r.arrays.iter().map(|a| a.cell_name.clone()).collect()
        };
        assert_eq!(names(&one), names(&many));
        assert_eq!(one.evaluations.len(), many.evaluations.len());
    }

    #[test]
    fn unsupported_mlc_lands_in_skipped() {
        let mut study = small_study();
        study.array.bits_per_cell = vec![BitsPerCell::Mlc2];
        let result = run_study_with_threads(&study, 2).unwrap();
        // SRAM cannot do MLC; the NVMs can.
        assert_eq!(result.skipped.len(), 1);
        assert!(result.skipped[0].0.contains("SRAM"));
        assert_eq!(result.arrays.len(), 4);
    }

    #[test]
    fn empty_cell_selection_errors() {
        let mut study = small_study();
        study.cells = CellSelection {
            technologies: Some(vec![]),
            tentpoles: true,
            reference_rram: false,
            sram_baseline: false,
            back_gated_fefet: false,
            custom: vec![],
        };
        assert!(matches!(
            run_study_with_threads(&study, 2),
            Err(StudyError::NoCells)
        ));
    }
}
