//! The multi-study scheduler: shard a queue of [`StudyConfig`]s across a
//! shared worker budget and one warm [`SubarrayCache`].
//!
//! A batched exploration campaign (many users posing "what-if" studies over
//! the same cell families) should not pay for subarray physics once per
//! study: characterization depends on `(cell, node, geometry, depth)` and
//! nothing study-specific, so a single cache can serve the whole queue. The
//! [`StudyScheduler`] runs studies from a queue on a fixed number of
//! concurrent *lanes*, splits the worker-thread budget across the lanes,
//! threads every study through the one shared cache, and reports the
//! per-study cache delta so operators can watch the cross-study hit rate
//! climb as the cache warms.
//!
//! Studies are popped in queue order (lock-free atomic index, like the
//! sweep engine's job fan-out) and their outcomes are returned in queue
//! order regardless of completion interleaving. Each study's own
//! [`StudyResult`] is deterministic; only the *cache counter deltas* depend
//! on scheduling, since concurrent lanes flush into the same counters.

use crate::config::StudyConfig;
use crate::stream::{NullSink, ResultSink, StudyExecutor};
use crate::sweep::{StudyError, StudyResult};
use nvmx_nvsim::{CacheStats, IncumbentStore, SubarrayCache};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Runs `run(index, task)` for every task, popped lock-free (shared atomic
/// index) across `lanes` scoped threads, returning the outcomes **in task
/// order** regardless of completion interleaving.
///
/// This is the scheduler's lane engine, factored out so other multi-task
/// drivers — notably the `nvmx-coordinator` binary, whose "tasks" are
/// *studies each sharded across N worker processes* — shard work the exact
/// same way the in-process scheduler does.
///
/// `lanes` is clamped to `1..=tasks.len()`. Panics in `run` propagate after
/// all lanes join (scoped-thread semantics).
pub fn run_on_lanes<T, R, F>(tasks: &[T], lanes: usize, run: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let slots: Vec<OnceLock<R>> = tasks.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let lanes = lanes.clamp(1, tasks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..lanes {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(index) else { break };
                let outcome = run(index, task);
                assert!(slots[index].set(outcome).is_ok(), "lane slot written twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("all lane slots filled"))
        .collect()
}

/// Like [`run_on_lanes`], but additionally delivers each outcome to
/// `drain` **in task order while later tasks are still running** — the
/// same slot-order streaming pattern the sweep engine uses for its event
/// emission, factored here for other slot-ordered producers (the
/// fault-study trial fan-out).
///
/// `drain` runs on the calling thread. An `Err` from `drain` stops
/// delivery (in-flight tasks still complete) and is returned; the
/// completed outcomes are returned otherwise, in task order.
///
/// # Errors
///
/// The first `drain` error, verbatim.
pub fn run_on_lanes_streaming<T, R, F>(
    tasks: &[T],
    lanes: usize,
    run: F,
    mut drain: impl FnMut(usize, &R) -> std::io::Result<()>,
) -> std::io::Result<Vec<R>>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let slots: Vec<OnceLock<R>> = tasks.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let lanes = lanes.clamp(1, tasks.len().max(1));
    let mut drain_err = None;
    std::thread::scope(|scope| {
        for _ in 0..lanes {
            scope.spawn(|| {
                let _flag = crate::sweep::PanicFlag(&poisoned);
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(index) else { break };
                    let outcome = run(index, task);
                    assert!(slots[index].set(outcome).is_ok(), "lane slot written twice");
                }
            });
        }
        for (index, slot) in slots.iter().enumerate() {
            // `None` means a lane died; stop draining and let the scope
            // re-raise its panic at join.
            let Some(outcome) = crate::sweep::wait_filled(slot, &poisoned) else {
                return;
            };
            if let Err(e) = drain(index, outcome) {
                drain_err = Some(e);
                return;
            }
        }
    });
    match drain_err {
        Some(e) => Err(e),
        None => Ok(slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("all lane slots filled"))
            .collect()),
    }
}

/// What happened to one queued study.
#[derive(Debug)]
pub struct StudyOutcome {
    /// Position in the submitted queue.
    pub index: usize,
    /// Study name (kept even when the run failed).
    pub name: String,
    /// The study's result, or why it could not run.
    pub result: Result<StudyResult, StudyError>,
    /// Shared-cache counters accrued while this study ran. On a warm cache
    /// this is the *cross-study* view: hits include reuse of physics
    /// characterized by earlier (or concurrent) studies. Deltas from
    /// concurrent lanes interleave, so treat this as observability data.
    pub cache: CacheStats,
}

impl StudyOutcome {
    /// Cache hit rate observed while this study ran.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Everything a [`StudyScheduler::run_queue_with`] call produced.
#[derive(Debug)]
pub struct SchedulerReport {
    /// Per-study outcomes, in queue order.
    pub outcomes: Vec<StudyOutcome>,
    /// Cumulative counters of the shared cache after the whole queue ran
    /// (cross-study totals).
    pub cache: CacheStats,
}

impl SchedulerReport {
    /// `true` when every queued study ran to completion.
    pub fn all_succeeded(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// The successfully completed results, in queue order.
    pub fn results(&self) -> impl Iterator<Item = &StudyResult> {
        self.outcomes.iter().filter_map(|o| o.result.as_ref().ok())
    }
}

/// Shards a queue of studies across concurrent lanes over one shared
/// [`SubarrayCache`].
///
/// # Examples
///
/// ```
/// use nvmexplorer_core::config::{StudyConfig, TrafficSpec};
/// use nvmexplorer_core::scheduler::StudyScheduler;
/// use nvmx_nvsim::SubarrayCache;
///
/// let make = |name: &str| {
///     let mut study = StudyConfig {
///         name: name.into(),
///         cells: Default::default(),
///         array: Default::default(),
///         traffic: TrafficSpec::Explicit {
///             patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
///         },
///         constraints: Default::default(),
///         output: Default::default(),
///         store: Default::default(),
///     };
///     study.cells.technologies = Some(vec![nvmx_celldb::TechnologyClass::Stt]);
///     study
/// };
/// let cache = SubarrayCache::new();
/// // One lane: `b` runs strictly after `a`, so it reuses `a`'s physics.
/// let report = StudyScheduler::with_workers(2)
///     .lanes(1)
///     .run_queue_silent(&[make("a"), make("b")], &cache);
/// assert!(report.all_succeeded());
/// assert!(report.outcomes[1].cache_hit_rate() > 0.9);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StudyScheduler {
    workers: usize,
    lanes: usize,
}

impl Default for StudyScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl StudyScheduler {
    /// A scheduler with a worker per available CPU (capped at 16) and two
    /// concurrent lanes.
    pub fn new() -> Self {
        Self::with_workers(crate::sweep::default_workers())
    }

    /// A scheduler with an explicit total worker budget (clamped to ≥ 1)
    /// and two concurrent lanes.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            lanes: 2,
        }
    }

    /// Sets how many studies run concurrently (clamped to `1..=workers`).
    /// Each lane gets an equal share of the worker budget.
    #[must_use]
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.clamp(1, self.workers);
        self
    }

    /// The total worker budget.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The `(active lanes, worker threads per lane)` plan for a queue of
    /// `studies` — the single source of truth [`Self::run_queue_with`]
    /// executes: lanes never exceed the queue length, and the thread
    /// budget is split across the lanes that actually run.
    pub fn plan_for(&self, studies: usize) -> (usize, usize) {
        let lanes = self.lanes.min(studies).max(1);
        (lanes, (self.workers / lanes).max(1))
    }

    /// Worker threads each lane's study executor receives when every lane
    /// is occupied (queues at least as long as the lane count). Shorter
    /// queues concentrate the budget — use [`Self::plan_for`] for the
    /// exact figure.
    pub fn threads_per_lane(&self) -> usize {
        self.plan_for(usize::MAX).1
    }

    /// Runs every queued study, building one sink per study with
    /// `make_sink` (called on the lane thread, receiving the queue index
    /// and the config — return a [`NullSink`] boxed if a study needs no
    /// output).
    ///
    /// Outcomes come back in queue order. A failed study (bad config, sink
    /// error) never blocks the rest of the queue.
    pub fn run_queue_with<F>(
        &self,
        queue: &[StudyConfig],
        cache: &SubarrayCache,
        make_sink: F,
    ) -> SchedulerReport
    where
        F: Fn(usize, &StudyConfig) -> Box<dyn ResultSink> + Sync,
    {
        self.run_queue_impl(queue, cache, None, make_sink)
    }

    /// [`Self::run_queue_with`] with cross-study incumbent seeding: every
    /// lane shares `seeds`, so a study whose design points overlap an
    /// earlier (or concurrently finished) study's starts its
    /// branch-and-bound scans from the recorded winners. Results are
    /// byte-identical to the unseeded queue — seeding only tightens score
    /// bounds — but warm studies prune far more candidates; compare the
    /// per-outcome [`StudyOutcome::cache`] prune counts.
    ///
    /// With more than one lane, *which* studies run warm depends on lane
    /// interleaving (a study can finish before or after its twin starts).
    /// The results never change; only the measured prune rate does. Use
    /// one lane when the warm/cold split itself must be deterministic.
    pub fn run_queue_with_seeds<F>(
        &self,
        queue: &[StudyConfig],
        cache: &SubarrayCache,
        seeds: &IncumbentStore,
        make_sink: F,
    ) -> SchedulerReport
    where
        F: Fn(usize, &StudyConfig) -> Box<dyn ResultSink> + Sync,
    {
        self.run_queue_impl(queue, cache, Some(seeds), make_sink)
    }

    fn run_queue_impl<F>(
        &self,
        queue: &[StudyConfig],
        cache: &SubarrayCache,
        seeds: Option<&IncumbentStore>,
        make_sink: F,
    ) -> SchedulerReport
    where
        F: Fn(usize, &StudyConfig) -> Box<dyn ResultSink> + Sync,
    {
        let (lanes, threads) = self.plan_for(queue.len());
        let outcomes = run_on_lanes(queue, lanes, |index, study| {
            let before = cache.stats();
            let mut sink = make_sink(index, study);
            let mut executor = StudyExecutor::with_threads(threads).cache(cache);
            if let Some(seeds) = seeds {
                executor = executor.seeds(seeds);
            }
            let result = executor.run(study, sink.as_mut());
            StudyOutcome {
                index,
                name: study.name.clone(),
                result,
                cache: cache.stats().since(before),
            }
        });
        SchedulerReport {
            outcomes,
            cache: cache.stats(),
        }
    }

    /// [`Self::run_queue_with`] over a queue-owned cache backed by the
    /// persistent characterization store at `store_dir`
    /// (`nvmx_nvsim::store`): every lane shares one store-backed cache, so
    /// the queue pays characterization cost at most once per fingerprint —
    /// and any later run over the same directory (this process or another)
    /// starts warm. Results are byte-identical to a storeless queue; the
    /// L2 traffic shows up in the report's `l2_*` cache counters.
    ///
    /// # Errors
    ///
    /// When the store directory cannot be created.
    pub fn run_queue_with_store<F>(
        &self,
        queue: &[StudyConfig],
        store_dir: impl Into<std::path::PathBuf>,
        make_sink: F,
    ) -> std::io::Result<SchedulerReport>
    where
        F: Fn(usize, &StudyConfig) -> Box<dyn ResultSink> + Sync,
    {
        let cache = SubarrayCache::with_store(store_dir)?;
        Ok(self.run_queue_impl(queue, &cache, None, make_sink))
    }

    /// [`Self::run_queue_with`] discarding all events — batch semantics
    /// over a shared cache.
    pub fn run_queue_silent(
        &self,
        queue: &[StudyConfig],
        cache: &SubarrayCache,
    ) -> SchedulerReport {
        self.run_queue_with(queue, cache, |_, _| Box::new(NullSink))
    }

    /// [`Self::run_queue_with_seeds`] discarding all events.
    pub fn run_queue_seeded(
        &self,
        queue: &[StudyConfig],
        cache: &SubarrayCache,
        seeds: &IncumbentStore,
    ) -> SchedulerReport {
        self.run_queue_with_seeds(queue, cache, seeds, |_, _| Box::new(NullSink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArraySettings, CellSelection, StudyConfig, TrafficSpec};
    use crate::sweep::run_study_with_threads;
    use nvmx_celldb::TechnologyClass;

    fn study(name: &str, capacity_mib: u64) -> StudyConfig {
        StudyConfig {
            name: name.into(),
            cells: CellSelection {
                technologies: Some(vec![TechnologyClass::Stt, TechnologyClass::Rram]),
                reference_rram: false,
                sram_baseline: false,
                ..CellSelection::default()
            },
            array: ArraySettings {
                capacities_mib: vec![capacity_mib],
                ..ArraySettings::default()
            },
            traffic: TrafficSpec::Explicit {
                patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
            },
            constraints: Default::default(),
            output: Default::default(),
            store: Default::default(),
        }
    }

    #[test]
    fn queue_results_match_standalone_runs_in_queue_order() {
        let queue = vec![study("q0", 2), study("q1", 4), study("q2", 2)];
        let cache = SubarrayCache::new();
        let report = StudyScheduler::with_workers(4)
            .lanes(2)
            .run_queue_silent(&queue, &cache);
        assert!(report.all_succeeded());
        assert_eq!(report.outcomes.len(), 3);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.index, i);
            assert_eq!(outcome.name, queue[i].name);
            let standalone = run_study_with_threads(&queue[i], 2).unwrap();
            let scheduled = outcome.result.as_ref().unwrap();
            assert_eq!(scheduled.arrays, standalone.arrays);
            assert_eq!(scheduled.evaluations, standalone.evaluations);
            assert_eq!(scheduled.skipped, standalone.skipped);
        }
    }

    #[test]
    fn shared_cache_serves_identical_follow_up_studies_entirely_warm() {
        let queue = vec![study("cold", 2), study("warm", 2)];
        let cache = SubarrayCache::new();
        // Single lane: deterministic queue order, so `warm` runs after
        // `cold` and must hit on every grid geometry.
        let report = StudyScheduler::with_workers(2)
            .lanes(1)
            .run_queue_silent(&queue, &cache);
        assert!(report.all_succeeded());
        assert!(report.outcomes[0].cache.misses > 0);
        assert_eq!(
            report.outcomes[1].cache.misses, 0,
            "warm study re-characterized"
        );
        assert!(report.outcomes[1].cache_hit_rate() > 0.99);
        assert!(report.cache.hit_rate() > 0.0);
    }

    #[test]
    fn a_store_backed_queue_starts_warm_on_the_second_pass() {
        let dir = std::env::temp_dir().join(format!("nvmx_sched_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let queue = vec![study("s0", 2), study("s1", 4)];
        let sched = StudyScheduler::with_workers(2).lanes(1);

        let cold = sched
            .run_queue_with_store(&queue, &dir, |_, _| Box::new(crate::stream::NullSink))
            .unwrap();
        assert!(cold.all_succeeded());
        assert!(cold.cache.l2_misses > 0, "cold queue found slabs on disk");
        assert_eq!(cold.cache.l2_hits, 0);

        // A second scheduler over the same directory models a later
        // process: every slab loads from the store, and the results stay
        // byte-identical to standalone storeless runs.
        let warm = sched
            .run_queue_with_store(&queue, &dir, |_, _| Box::new(crate::stream::NullSink))
            .unwrap();
        assert!(warm.all_succeeded());
        assert!(warm.cache.l2_hits > 0, "warm queue re-characterized");
        assert_eq!(warm.cache.l2_misses, 0);
        assert_eq!(warm.cache.l2_rejects, 0);
        for (outcome, config) in warm.outcomes.iter().zip(&queue) {
            let standalone = run_study_with_threads(config, 2).unwrap();
            let scheduled = outcome.result.as_ref().unwrap();
            assert_eq!(scheduled.arrays, standalone.arrays);
            assert_eq!(scheduled.evaluations, standalone.evaluations);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_studies_do_not_block_the_queue() {
        let mut bad = study("bad", 2);
        bad.cells = CellSelection {
            technologies: Some(vec![]),
            tentpoles: true,
            reference_rram: false,
            sram_baseline: false,
            back_gated_fefet: false,
            custom: vec![],
        };
        let queue = vec![bad, study("good", 2)];
        let cache = SubarrayCache::new();
        let report = StudyScheduler::with_workers(2).run_queue_silent(&queue, &cache);
        assert!(!report.all_succeeded());
        assert!(matches!(
            report.outcomes[0].result,
            Err(StudyError::NoCells)
        ));
        assert!(report.outcomes[1].result.is_ok());
        assert_eq!(report.results().count(), 1);
    }

    #[test]
    fn lane_and_thread_budgets_clamp_sanely() {
        let sched = StudyScheduler::with_workers(8).lanes(3);
        assert_eq!(sched.workers(), 8);
        assert_eq!(sched.threads_per_lane(), 2);
        let one = StudyScheduler::with_workers(1).lanes(5);
        assert_eq!(one.threads_per_lane(), 1);
    }
}
