//! The event-driven study pipeline: a typed [`StudyEvent`] stream plus the
//! [`ResultSink`] consumer trait, and the [`StudyExecutor`] that pushes
//! events while the lock-free sweep engine runs.
//!
//! # Why streaming
//!
//! The batch entry points ([`run_study`](crate::sweep::run_study) and
//! friends) materialize the full [`StudyResult`] before a caller can observe
//! anything — fine for a 5-array quickstart, hopeless for a
//! multi-gigabyte sweep served from a queue. This module inverts that:
//! every characterization and evaluation is pushed to a sink *as its slot
//! completes*, so results can stream to disk (CSV/JSONL), drive progress
//! UIs, or feed downstream consumers with bounded memory. The batch API
//! still exists — it is now a thin wrapper that runs the executor with a
//! [`NullSink`].
//!
//! # Determinism
//!
//! Events are emitted in **slot order**, not completion order: the engine
//! fans jobs out lock-free into pre-allocated slots, and a dedicated
//! drainer walks the slots in index order, emitting each as soon as it is
//! filled. Worker interleaving therefore never changes the event sequence —
//! the stream for a given [`StudyConfig`](crate::config::StudyConfig) is
//! identical at 1 thread and at 16 (proven by proptest in
//! `tests/stream_equivalence.rs`), and the [`StudyResult`] assembled from
//! the stream (see [`StudyResultBuilder`]) is byte-identical to the batch
//! engine's return value.
//!
//! The one non-deterministic corner is the *cache counters* inside
//! [`StudyStats`]: racing workers that miss the same cache slot may both
//! count a miss (the cache stores one value but tallies two), so
//! `stats.cache` is observability data, not an invariant — everything else
//! in the stream is exact.

use crate::eval::Evaluation;
use crate::sweep::StudyResult;
use nvmx_nvsim::{
    ArrayCharacterization, CacheStats, IncumbentStore, OptimizationTarget, SubarrayCache,
};
use serde::{Serialize, Value};

/// End-of-study summary carried by [`StudyEvent::StudyFinished`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyStats {
    /// Shared-DSE characterization jobs expanded from the config.
    pub jobs: usize,
    /// Optimization targets swept.
    pub targets: usize,
    /// Traffic patterns the config resolved to.
    pub traffic_patterns: usize,
    /// Design points successfully characterized.
    pub arrays: usize,
    /// `(array, traffic)` evaluations produced.
    pub evaluations: usize,
    /// Design points skipped (one entry per target, like the batch API).
    pub skipped: usize,
    /// Subarray-cache counters accrued while this study ran (`None` for
    /// uncached engine variants). Observational: when several concurrent
    /// studies share one cache the deltas interleave, and racing double
    /// misses may double-count — see the module docs.
    pub cache: Option<CacheStats>,
}

/// One observation from a running study, borrowed from the engine's slots —
/// sinks that need ownership clone what they keep.
///
/// Event order is deterministic (slot order, never completion order):
/// `StudyStarted`, then every `ArrayCharacterized`/`DesignSkipped` in job
/// order, then every `EvaluationProduced` in `arrays × traffic` order, then
/// `TargetWinnerSelected` per target (in the study's sorted target order),
/// then `StudyFinished`.
#[derive(Debug, Clone, Copy)]
pub enum StudyEvent<'a> {
    /// The study resolved its cells/traffic and is about to characterize.
    StudyStarted {
        /// Study name.
        name: &'a str,
        /// Resolved cell count.
        cells: usize,
        /// Shared-DSE jobs expanded (cells × capacities × depths).
        jobs: usize,
        /// Optimization targets swept.
        targets: usize,
        /// Resolved traffic patterns.
        traffic: usize,
    },
    /// One design point finished characterization.
    ArrayCharacterized {
        /// Slot index in the deterministic output order.
        index: usize,
        /// The characterized design point.
        array: &'a ArrayCharacterization,
    },
    /// One design point could not be characterized (reported once per
    /// target, for parity with the batch `skipped` list).
    DesignSkipped {
        /// Cell name of the failed design point.
        cell: &'a str,
        /// Target this skip is reported under.
        target: OptimizationTarget,
        /// Human-readable reason.
        reason: &'a str,
    },
    /// One `(array, traffic)` evaluation was produced.
    EvaluationProduced {
        /// Slot index in the deterministic `arrays × traffic` order.
        index: usize,
        /// The evaluation.
        evaluation: &'a Evaluation,
    },
    /// The study-wide winner under one optimization target: the feasible
    /// evaluation with the lowest total power (first in stream order wins
    /// ties). Not emitted for targets with no feasible evaluation.
    TargetWinnerSelected {
        /// The optimization target.
        target: OptimizationTarget,
        /// The winning evaluation.
        winner: &'a Evaluation,
    },
    /// The study completed; final counters.
    StudyFinished {
        /// Study name.
        name: &'a str,
        /// Final stats.
        stats: &'a StudyStats,
    },
    /// One fault-injection trial completed (fault campaigns only; see
    /// [`crate::fault_study`]). Emitted in trial slot order after the base
    /// study's events.
    FaultTrialProduced {
        /// Trial slot index in the deterministic `models × trials` order.
        index: usize,
        /// The trial record (injection seed included, so the wire carries
        /// everything a replay needs).
        trial: &'a crate::fault_study::FaultTrial,
    },
    /// Accuracy verdict for one fault model (fault campaigns only).
    /// Delivered to passive sinks too, like `TargetWinnerSelected`.
    AccuracyDegraded {
        /// Model index in the deterministic model-expansion order.
        index: usize,
        /// The per-model accuracy report.
        report: &'a crate::fault_study::FaultModelReport,
    },
    /// A fault campaign completed — the terminal event of fault streams,
    /// which never emit `StudyFinished` (the base study's counters ride
    /// inside [`crate::fault_study::FaultStudyStats`]).
    FaultStudyFinished {
        /// Study name.
        name: &'a str,
        /// Final counters (base study + fault phase).
        stats: &'a crate::fault_study::FaultStudyStats,
    },
}

impl StudyEvent<'_> {
    /// Wire tag of the event (the `"event"` field of its JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::StudyStarted { .. } => "study_started",
            Self::ArrayCharacterized { .. } => "array_characterized",
            Self::DesignSkipped { .. } => "design_skipped",
            Self::EvaluationProduced { .. } => "evaluation_produced",
            Self::TargetWinnerSelected { .. } => "target_winner_selected",
            Self::StudyFinished { .. } => "study_finished",
            Self::FaultTrialProduced { .. } => "fault_trial_produced",
            Self::AccuracyDegraded { .. } => "accuracy_degraded",
            Self::FaultStudyFinished { .. } => "fault_study_finished",
        }
    }
}

fn field(name: &str, value: Value) -> (String, Value) {
    (name.to_owned(), value)
}

fn uint(n: usize) -> Value {
    Value::Uint(n as u64)
}

fn text(s: &str) -> Value {
    Value::Str(s.to_owned())
}

/// The flat field block shared by `study_finished` and
/// `fault_study_finished` (which extends it with fault counters).
fn push_finished_fields(fields: &mut Vec<(String, Value)>, name: &str, stats: &StudyStats) {
    fields.push(field("name", text(name)));
    fields.push(field("jobs", uint(stats.jobs)));
    fields.push(field("targets", uint(stats.targets)));
    fields.push(field("traffic", uint(stats.traffic_patterns)));
    fields.push(field("arrays", uint(stats.arrays)));
    fields.push(field("evaluations", uint(stats.evaluations)));
    fields.push(field("skipped", uint(stats.skipped)));
    let cache = match stats.cache {
        Some(c) => {
            let mut cache_fields = vec![
                field("hits", Value::Uint(c.hits)),
                field("misses", Value::Uint(c.misses)),
                field("pruned", Value::Uint(c.pruned)),
                field("l2_hits", Value::Uint(c.l2_hits)),
                field("l2_misses", Value::Uint(c.l2_misses)),
                field("l2_rejects", Value::Uint(c.l2_rejects)),
            ];
            // The per-class reject breakdown rides only when observed, so
            // a clean run's cache object is byte-identical to a pre-v4
            // writer's and old captures re-encode unchanged.
            for (name, count) in [
                ("l2_reject_io", c.l2_reject_classes.io),
                ("l2_reject_version", c.l2_reject_classes.version),
                ("l2_reject_truncated", c.l2_reject_classes.truncated),
                ("l2_reject_corrupt", c.l2_reject_classes.corrupt),
                ("l2_reject_collision", c.l2_reject_classes.collision),
            ] {
                if count != 0 {
                    cache_fields.push(field(name, Value::Uint(count)));
                }
            }
            cache_fields.push(field("hit_rate", Value::Float(c.hit_rate())));
            cache_fields.push(field("prune_rate", Value::Float(c.prune_rate())));
            Value::Object(cache_fields)
        }
        None => Value::Null,
    };
    fields.push(field("cache", cache));
}

// Hand-written (the derive stand-in does not handle lifetimes): every event
// serializes as a flat object tagged by `"event"`, so a JSONL stream is
// self-describing line by line.
impl Serialize for StudyEvent<'_> {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        fields.push(field("event", text(self.kind())));
        match self {
            Self::StudyStarted {
                name,
                cells,
                jobs,
                targets,
                traffic,
            } => {
                fields.push(field("name", text(name)));
                fields.push(field("cells", uint(*cells)));
                fields.push(field("jobs", uint(*jobs)));
                fields.push(field("targets", uint(*targets)));
                fields.push(field("traffic", uint(*traffic)));
            }
            Self::ArrayCharacterized { index, array } => {
                fields.push(field("index", uint(*index)));
                fields.push(field("array", array.to_value()));
            }
            Self::DesignSkipped {
                cell,
                target,
                reason,
            } => {
                fields.push(field("cell", text(cell)));
                fields.push(field("target", text(target.label())));
                fields.push(field("reason", text(reason)));
            }
            Self::EvaluationProduced { index, evaluation } => {
                fields.push(field("index", uint(*index)));
                fields.push(field("evaluation", evaluation.to_value()));
            }
            Self::TargetWinnerSelected { target, winner } => {
                fields.push(field("target", text(target.label())));
                fields.push(field("cell", text(&winner.array.cell_name)));
                fields.push(field("traffic", text(&winner.traffic.name)));
                fields.push(field(
                    "total_power_w",
                    Value::Float(winner.total_power().value()),
                ));
            }
            Self::StudyFinished { name, stats } => {
                push_finished_fields(&mut fields, name, stats);
            }
            Self::FaultTrialProduced { index, trial } => {
                fields.push(field("index", uint(*index)));
                fields.push(field("model_index", uint(trial.model_index)));
                fields.push(field("trial", Value::Uint(u64::from(trial.trial))));
                fields.push(field("cell", text(&trial.cell)));
                fields.push(field("bits_per_cell", trial.bits_per_cell.to_value()));
                fields.push(field("temperature_c", Value::Float(trial.temperature_c)));
                fields.push(field("bit_error_rate", Value::Float(trial.bit_error_rate)));
                fields.push(field("injection_seed", Value::Uint(trial.injection_seed)));
                fields.push(field("bits_total", Value::Uint(trial.bits_total)));
                fields.push(field("bits_flipped", Value::Uint(trial.bits_flipped)));
                fields.push(field("accuracy", Value::Float(trial.accuracy)));
            }
            Self::AccuracyDegraded { index, report } => {
                fields.push(field("index", uint(*index)));
                fields.push(field("model_index", uint(report.model_index)));
                fields.push(field("cell", text(&report.cell)));
                fields.push(field("bits_per_cell", report.bits_per_cell.to_value()));
                fields.push(field("temperature_c", Value::Float(report.temperature_c)));
                fields.push(field("baseline", Value::Float(report.report.baseline)));
                fields.push(field("mean", Value::Float(report.report.mean)));
                fields.push(field("worst", Value::Float(report.report.worst)));
                fields.push(field(
                    "bit_error_rate",
                    Value::Float(report.report.bit_error_rate),
                ));
                fields.push(field(
                    "trials",
                    Value::Uint(u64::from(report.report.trials)),
                ));
                fields.push(field("acceptable", Value::Bool(report.acceptable)));
            }
            Self::FaultStudyFinished { name, stats } => {
                push_finished_fields(&mut fields, name, &stats.base);
                fields.push(field("models", uint(stats.models)));
                fields.push(field("trials", uint(stats.trials)));
                fields.push(field("degraded", uint(stats.degraded)));
            }
        }
        Value::Object(fields)
    }
}

/// A consumer of [`StudyEvent`]s.
///
/// Sinks are driven from the executor's drainer thread in deterministic
/// slot order; an `Err` aborts the study with
/// [`StudyError::Sink`](crate::sweep::StudyError::Sink) (the in-flight
/// characterization work still completes, but no further events are
/// delivered).
pub trait ResultSink {
    /// Handles one event.
    ///
    /// # Errors
    ///
    /// Propagate I/O failures; the executor aborts the study on the first
    /// sink error.
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()>;

    /// `true` for sinks that do not need the per-slot events
    /// ([`NullSink`], summary-only sinks, or an all-passive fan-out). The
    /// engine skips the slot-order streaming drain for passive sinks —
    /// the batch entry points keep exactly their pre-streaming execution
    /// profile, with no drainer thread competing with workers for
    /// timeslices. A passive sink is **still delivered** the bracketing
    /// events (`study_started`, `target_winner_selected`,
    /// `study_finished`) — only the per-slot
    /// `array_characterized`/`design_skipped`/`evaluation_produced`
    /// events are skipped.
    fn is_passive(&self) -> bool {
        false
    }
}

// Boxed sinks forward transparently, so sink sets built at runtime (the
// coordinator's per-study capture + output fan-outs) compose like any
// other sink.
impl ResultSink for Box<dyn ResultSink + '_> {
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
        (**self).on_event(event)
    }

    fn is_passive(&self) -> bool {
        (**self).is_passive()
    }
}

/// A sink that discards every event — the batch API runs on this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ResultSink for NullSink {
    fn on_event(&mut self, _event: &StudyEvent<'_>) -> std::io::Result<()> {
        Ok(())
    }

    fn is_passive(&self) -> bool {
        true
    }
}

/// Fans every event out to several sinks, in push order.
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn ResultSink>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Adds a sink; events reach sinks in push order.
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn ResultSink) -> Self {
        self.sinks.push(sink);
        self
    }
}

impl ResultSink for MultiSink<'_> {
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
        for sink in &mut self.sinks {
            sink.on_event(event)?;
        }
        Ok(())
    }

    fn is_passive(&self) -> bool {
        self.sinks.iter().all(|sink| sink.is_passive())
    }
}

/// Rebuilds a [`StudyResult`] from the event stream.
///
/// This is the proof object for the streaming refactor: feeding the events
/// of a study into a builder yields a result byte-identical to what the
/// batch engine returns for the same config (asserted in
/// `tests/stream_equivalence.rs`).
#[derive(Debug, Default)]
pub struct StudyResultBuilder {
    name: String,
    arrays: Vec<ArrayCharacterization>,
    evaluations: Vec<Evaluation>,
    skipped: Vec<(String, String)>,
    fault_trials: Vec<crate::fault_study::FaultTrial>,
    fault_reports: Vec<crate::fault_study::FaultModelReport>,
    fault_stats: Option<crate::fault_study::FaultStudyStats>,
    finished: bool,
}

impl StudyResultBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The evaluations collected so far, in stream order. The wire-replay
    /// layer uses this to re-link `target_winner_selected` lines (which
    /// carry the winner's identity, not its full record) back to the
    /// evaluations that already streamed.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evaluations
    }

    /// The assembled result, or `None` when no terminal event
    /// (`StudyFinished` or `FaultStudyFinished`) was seen (the stream was
    /// aborted or is still running).
    pub fn finish(self) -> Option<StudyResult> {
        self.finish_parts().map(|(result, _)| result)
    }

    /// Like [`Self::finish`], additionally returning the fault-campaign
    /// outcome when the stream was a fault campaign (terminal event
    /// `fault_study_finished`); `None` in the second slot for plain
    /// studies.
    pub fn finish_parts(self) -> Option<(StudyResult, Option<crate::fault_study::FaultOutcome>)> {
        if !self.finished {
            return None;
        }
        let result = StudyResult {
            name: self.name,
            arrays: self.arrays,
            evaluations: self.evaluations,
            skipped: self.skipped,
        };
        let fault = self
            .fault_stats
            .map(|stats| crate::fault_study::FaultOutcome {
                trials: self.fault_trials,
                reports: self.fault_reports,
                stats,
            });
        Some((result, fault))
    }
}

impl ResultSink for StudyResultBuilder {
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
        match event {
            StudyEvent::StudyStarted { name, .. } => {
                self.name = (*name).to_owned();
            }
            StudyEvent::ArrayCharacterized { array, .. } => {
                self.arrays.push((*array).clone());
            }
            StudyEvent::DesignSkipped { cell, reason, .. } => {
                self.skipped
                    .push(((*cell).to_owned(), (*reason).to_owned()));
            }
            StudyEvent::EvaluationProduced { evaluation, .. } => {
                self.evaluations.push((*evaluation).clone());
            }
            StudyEvent::TargetWinnerSelected { .. } => {}
            StudyEvent::StudyFinished { .. } => {
                self.finished = true;
            }
            StudyEvent::FaultTrialProduced { trial, .. } => {
                self.fault_trials.push((*trial).clone());
            }
            StudyEvent::AccuracyDegraded { report, .. } => {
                self.fault_reports.push((*report).clone());
            }
            StudyEvent::FaultStudyFinished { name, stats } => {
                self.name = (*name).to_owned();
                self.fault_stats = Some(**stats);
                self.finished = true;
            }
        }
        Ok(())
    }
}

/// Runs studies through the streaming engine, pushing [`StudyEvent`]s to a
/// sink while returning the same deterministic [`StudyResult`] as the batch
/// API.
///
/// # Examples
///
/// ```
/// use nvmexplorer_core::config::{StudyConfig, TrafficSpec};
/// use nvmexplorer_core::stream::{StudyExecutor, StudyResultBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut study = StudyConfig {
///     name: "stream-demo".into(),
///     cells: Default::default(),
///     array: Default::default(),
///     traffic: TrafficSpec::Explicit {
///         patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
///     },
///     constraints: Default::default(),
///     output: Default::default(),
///     store: Default::default(),
/// };
/// study.cells.technologies = Some(vec![nvmx_celldb::TechnologyClass::Stt]);
/// let mut builder = StudyResultBuilder::new();
/// let result = StudyExecutor::with_threads(2).run(&study, &mut builder)?;
/// let rebuilt = builder.finish().expect("stream finished");
/// assert_eq!(result.arrays, rebuilt.arrays);
/// # Ok(())
/// # }
/// ```
pub struct StudyExecutor<'c> {
    threads: usize,
    cache: Option<&'c SubarrayCache>,
    /// Executor-owned store-backed cache ([`Self::store`]); used when no
    /// caller cache is shared via [`Self::cache`].
    owned: Option<SubarrayCache>,
    seeds: Option<&'c IncumbentStore>,
}

impl Default for StudyExecutor<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'c> StudyExecutor<'c> {
    /// An executor with a worker per available CPU (capped at 16), like
    /// [`run_study`](crate::sweep::run_study).
    pub fn new() -> Self {
        Self::with_threads(crate::sweep::default_workers())
    }

    /// An executor with an explicit characterization/evaluation worker
    /// count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            cache: None,
            owned: None,
            seeds: None,
        }
    }

    /// Shares a caller-owned [`SubarrayCache`] across every study this
    /// executor runs (otherwise each run gets a private cache).
    #[must_use]
    pub fn cache(mut self, cache: &'c SubarrayCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Backs this executor's cache with the persistent characterization
    /// store at `dir` (`nvmx_nvsim::store`): slab misses consult the
    /// on-disk L2 before characterizing, and finished studies publish new
    /// slabs back. The executor owns the store-backed cache and shares it
    /// across every study it runs; a cache shared via [`Self::cache`]
    /// takes precedence. Results stay byte-identical to storeless runs.
    ///
    /// # Errors
    ///
    /// When the store directory cannot be created.
    pub fn store(mut self, dir: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        self.owned = Some(SubarrayCache::with_store(dir)?);
        Ok(self)
    }

    /// Shares a caller-owned [`IncumbentStore`] across every study this
    /// executor runs: each design point's branch-and-bound scan seeds its
    /// incumbents from the winners a prior identical point recorded, and
    /// records its own back. Results stay byte-identical to an unseeded
    /// run — seeding only raises the prune rate. The stream's wire format
    /// is unchanged; warm-study pruning shows up in the existing
    /// `StudyFinished` cache counters.
    #[must_use]
    pub fn seeds(mut self, seeds: &'c IncumbentStore) -> Self {
        self.seeds = Some(seeds);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one study, streaming events to `sink` and returning the
    /// assembled [`StudyResult`] (byte-identical to the batch API).
    ///
    /// # Errors
    ///
    /// [`StudyError`](crate::sweep::StudyError) on an unresolvable config,
    /// or [`StudyError::Sink`](crate::sweep::StudyError::Sink) when the
    /// sink fails.
    pub fn run(
        &self,
        study: &crate::config::StudyConfig,
        sink: &mut dyn ResultSink,
    ) -> Result<StudyResult, crate::sweep::StudyError> {
        let private;
        let cache = match (self.cache, &self.owned) {
            (Some(cache), _) => cache,
            (None, Some(owned)) => owned,
            (None, None) => {
                private = SubarrayCache::new();
                &private
            }
        };
        match self.seeds {
            Some(seeds) => {
                crate::sweep::run_streaming_seeded(study, self.threads, cache, seeds, sink)
            }
            None => crate::sweep::run_streaming_with_cache(study, self.threads, cache, sink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that records event kinds and fails on request.
    struct Recorder {
        kinds: Vec<&'static str>,
        fail_at: Option<usize>,
    }

    impl ResultSink for Recorder {
        fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
            if self.fail_at == Some(self.kinds.len()) {
                return Err(std::io::Error::other("sink exploded"));
            }
            self.kinds.push(event.kind());
            Ok(())
        }
    }

    fn small_study() -> crate::config::StudyConfig {
        use crate::config::{ArraySettings, CellSelection, StudyConfig, TrafficSpec};
        let mut study = StudyConfig {
            name: "stream-unit".into(),
            cells: CellSelection {
                technologies: Some(vec![nvmx_celldb::TechnologyClass::Stt]),
                reference_rram: false,
                sram_baseline: false,
                ..CellSelection::default()
            },
            array: ArraySettings::default(),
            traffic: TrafficSpec::Explicit {
                patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e7, 64)],
            },
            constraints: Default::default(),
            output: Default::default(),
            store: Default::default(),
        };
        study.array.capacities_mib = vec![2];
        study
    }

    #[test]
    fn event_order_brackets_the_study() {
        let mut recorder = Recorder {
            kinds: Vec::new(),
            fail_at: None,
        };
        let result = StudyExecutor::with_threads(2)
            .run(&small_study(), &mut recorder)
            .unwrap();
        assert_eq!(recorder.kinds.first(), Some(&"study_started"));
        assert_eq!(recorder.kinds.last(), Some(&"study_finished"));
        let arrays = recorder
            .kinds
            .iter()
            .filter(|k| **k == "array_characterized")
            .count();
        let evals = recorder
            .kinds
            .iter()
            .filter(|k| **k == "evaluation_produced")
            .count();
        assert_eq!(arrays, result.arrays.len());
        assert_eq!(evals, result.evaluations.len());
        assert!(recorder.kinds.contains(&"target_winner_selected"));
    }

    #[test]
    fn sink_error_aborts_the_study() {
        let mut recorder = Recorder {
            kinds: Vec::new(),
            fail_at: Some(1),
        };
        let err = StudyExecutor::with_threads(2)
            .run(&small_study(), &mut recorder)
            .unwrap_err();
        assert!(matches!(err, crate::sweep::StudyError::Sink(_)));
        assert_eq!(recorder.kinds, vec!["study_started"]);
    }

    #[test]
    fn builder_requires_a_finished_stream() {
        let builder = StudyResultBuilder::new();
        assert!(builder.finish().is_none());
    }

    #[test]
    fn multi_sink_fans_out_in_order() {
        let mut a = Recorder {
            kinds: Vec::new(),
            fail_at: None,
        };
        let mut b = Recorder {
            kinds: Vec::new(),
            fail_at: None,
        };
        {
            let mut multi = MultiSink::new().with(&mut a).with(&mut b);
            let stats = StudyStats {
                jobs: 0,
                targets: 0,
                traffic_patterns: 0,
                arrays: 0,
                evaluations: 0,
                skipped: 0,
                cache: None,
            };
            multi
                .on_event(&StudyEvent::StudyFinished {
                    name: "x",
                    stats: &stats,
                })
                .unwrap();
        }
        assert_eq!(a.kinds, vec!["study_finished"]);
        assert_eq!(b.kinds, vec!["study_finished"]);
    }

    #[test]
    fn events_serialize_with_their_kind_tag() {
        let stats = StudyStats {
            jobs: 1,
            targets: 2,
            traffic_patterns: 3,
            arrays: 4,
            evaluations: 5,
            skipped: 0,
            cache: Some(CacheStats {
                hits: 3,
                misses: 1,
                pruned: 4,
                l2_hits: 2,
                l2_misses: 1,
                l2_rejects: 1,
                l2_reject_classes: nvmx_nvsim::L2RejectClasses {
                    version: 1,
                    ..Default::default()
                },
            }),
        };
        let event = StudyEvent::StudyFinished {
            name: "demo",
            stats: &stats,
        };
        let json = serde_json::to_string(&event).unwrap();
        assert!(json.contains("\"event\":\"study_finished\""));
        assert!(json.contains("\"evaluations\":5"));
        assert!(json.contains("\"hit_rate\":0.75"));
        assert!(json.contains("\"pruned\":4"));
        assert!(json.contains("\"prune_rate\":0.5"));
        assert!(json.contains("\"l2_hits\":2"));
        assert!(json.contains("\"l2_misses\":1"));
        assert!(json.contains("\"l2_rejects\":1"));
        assert!(json.contains("\"l2_reject_version\":1"));
        assert!(
            !json.contains("\"l2_reject_io\""),
            "zero classes stay off the wire"
        );
    }
}
