//! The campaign-service session layer: the transport-agnostic engine
//! behind the `nvmx-serve` daemon.
//!
//! [`CampaignService`] turns the one-shot campaign flow (parse a config,
//! run it, write artifacts, exit) into a resident multi-tenant service:
//!
//! - **Admission** — [`CampaignService::submit`] validates a config
//!   through the same [`CampaignConfig::from_json`] path every binary
//!   uses, assigns a session id, and places the session in a bounded
//!   priority queue (higher priority first, ties in
//!   submission order). A full queue or a draining service rejects with a
//!   typed [`AdmitError`] instead of blocking the caller.
//! - **Execution** — a fixed pool of lane threads (the service-resident
//!   equivalent of [`StudyScheduler::run_on_lanes`](crate::scheduler))
//!   pops sessions in priority order and runs them through
//!   [`StudyExecutor`] against **one shared warm
//!   [`SubarrayCache`]** — optionally backed by the persistent
//!   characterization store — and one shared [`IncumbentStore`], so every
//!   tenant's request after the first hits warm state (the multi-study
//!   bench measures 94–97 % hit rates warm).
//! - **Event channels** — each session's slot-ordered wire frames
//!   (protocol of [`crate::wire`]) are retained in a per-session log;
//!   any number of [`EventCursor`]s replay the log from the start and
//!   then follow live, so a client can attach, detach, and re-attach
//!   without perturbing the run. A client disconnect therefore cannot
//!   poison a session: the run writes to the log, never to a socket.
//! - **Determinism** — the engine underneath is the same byte-identical
//!   machinery the CLI uses, so a session's event stream (and the
//!   artifacts a client rebuilds from it) matches a cold local `run` of
//!   the same config byte for byte — except the terminal frame's
//!   observational cache counters, which legitimately reflect the warm
//!   shared cache (see `docs/PROTOCOL.md` § Determinism contract).
//! - **Tenant observability** — every session records the shared cache's
//!   [`CacheStats`] delta accrued while it ran, so tenants see their own
//!   hit rates ([`SessionSnapshot::cache`], and the `done` response frame
//!   on the wire).
//! - **Expiry** — with [`ServiceConfig::session_ttl`] set, a terminal
//!   session's retained log is garbage-collected once it has sat
//!   unreplayed past the TTL: the session row survives (phase
//!   [`SessionPhase::Reaped`], final event count preserved) but the
//!   lines are freed, bounding the daemon's memory over long campaigns.
//!   The sweep is lazy — every service entry point runs it, so no
//!   background timer thread exists.
//! - **Drain** — [`CampaignService::shutdown`] stops admission, lets the
//!   queue empty, joins the lanes, and flushes the store; nothing is
//!   aborted mid-run unless explicitly [`cancel`](CampaignService::cancel)led.
//!
//! The layer is deliberately free of sockets: `nvmx-serve` maps
//! connections onto these calls and copies cursor lines to clients. That
//! split keeps the session machinery testable in-process (see
//! `tests/service_equivalence.rs`) and the transport trivially
//! replaceable (Unix socket, TCP, or an in-memory pair in tests).

use crate::config::{CampaignConfig, ConfigError};
use crate::stream::{ResultSink, StudyEvent, StudyExecutor};
use crate::wire::{SessionBrief, Shard, WireSink};
use nvmx_nvsim::{CacheStats, IncumbentStore, SubarrayCache};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a [`CampaignService`] is provisioned.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Characterization/evaluation worker threads per running session
    /// (the [`StudyExecutor::with_threads`] count).
    pub workers: usize,
    /// Sessions that may run concurrently (lane threads).
    pub lanes: usize,
    /// Maximum sessions waiting in the admission queue; a submit beyond
    /// this is rejected with [`AdmitError::QueueFull`].
    pub capacity: usize,
    /// Back the shared cache with the persistent characterization store
    /// at this directory (`nvmx_nvsim::store`), shared across tenants.
    pub store: Option<PathBuf>,
    /// Reap a session's retained event log this long after it reaches a
    /// terminal state. Reaped sessions stay listed (phase
    /// [`SessionPhase::Reaped`], event count preserved) but their lines
    /// are freed and can no longer be replayed. `None` retains logs for
    /// the life of the service.
    pub session_ttl: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            lanes: 1,
            capacity: 64,
            store: None,
            session_ttl: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum AdmitError {
    /// The service is draining: no new sessions are accepted.
    Draining,
    /// The admission queue is at [`ServiceConfig::capacity`].
    QueueFull {
        /// The configured capacity the queue is at.
        capacity: usize,
    },
    /// The submitted config failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Draining => write!(f, "service is draining; submissions are closed"),
            Self::QueueFull { capacity } => {
                write!(f, "admission queue is full ({capacity} sessions queued)")
            }
            Self::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A session's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// Admitted, waiting for a lane.
    Queued,
    /// A lane is executing the campaign.
    Running,
    /// Ran to completion; the log ends with the terminal wire frame.
    Finished,
    /// The run failed; [`SessionSnapshot::error`] carries the reason.
    Failed,
    /// Cancelled before or during the run.
    Cancelled,
    /// Terminal state whose event log outlived
    /// [`ServiceConfig::session_ttl`] and was garbage-collected. The
    /// session stays listed (id, study, final event count), but its
    /// lines are gone: a new cursor yields nothing.
    Reaped,
}

impl SessionPhase {
    /// The state's wire spelling (the `state` field of a status row and
    /// the `outcome` field of a `done` response).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Finished => "finished",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
            Self::Reaped => "reaped",
        }
    }

    /// `true` for the states a session can never leave.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Self::Finished | Self::Failed | Self::Cancelled | Self::Reaped
        )
    }
}

/// A point-in-time view of one session.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// Session id.
    pub session: u64,
    /// Campaign name (the config's `name`).
    pub study: String,
    /// Admission priority.
    pub priority: u8,
    /// Lifecycle state at snapshot time.
    pub phase: SessionPhase,
    /// Wire lines emitted so far.
    pub events: u64,
    /// Failure reason, for [`SessionPhase::Failed`].
    pub error: Option<String>,
    /// The shared cache's counter delta accrued while this session ran —
    /// the tenant's own view of the warm cache. `None` until the session
    /// reaches a terminal state. Observational: concurrent sessions'
    /// deltas overlap, and counters race benignly at >1 workers.
    pub cache: Option<CacheStats>,
}

impl SessionSnapshot {
    /// The snapshot as a wire status row.
    pub fn brief(&self) -> SessionBrief {
        SessionBrief {
            session: self.session,
            study: self.study.clone(),
            state: self.phase.as_str().to_owned(),
            priority: self.priority,
            events: self.events,
        }
    }
}

/// A point-in-time view of the whole service.
#[derive(Debug, Clone)]
pub struct ServiceStatus {
    /// `true` once [`CampaignService::shutdown`] was called.
    pub draining: bool,
    /// Sessions admitted but not yet claimed by a lane.
    pub queue_depth: u64,
    /// The admission queue's capacity.
    pub capacity: u64,
    /// Every session the service remembers, in submission order —
    /// including reaped ones, whose rows report phase
    /// [`SessionPhase::Reaped`] with the final event count preserved.
    pub sessions: Vec<SessionSnapshot>,
    /// How many of [`sessions`](Self::sessions) have had their event log
    /// reaped under [`ServiceConfig::session_ttl`].
    pub reaped: u64,
    /// Cumulative shared-cache counters since the service started.
    pub cache: CacheStats,
}

/// What [`CampaignService::submit`] returns: the assigned session id and
/// where it landed in the queue.
#[derive(Debug, Clone)]
pub struct Admission {
    /// The new session's id.
    pub session: u64,
    /// The campaign name the config resolved to.
    pub study: String,
    /// Sessions queued ahead at admission time.
    pub queue_depth: u64,
}

// ------------------------------------------------------------- internals

/// Mutable per-session state, guarded by the session's own mutex so log
/// appends never contend with the service-wide lock.
struct SessionState {
    phase: SessionPhase,
    /// Every complete wire line the session has emitted, in slot order.
    /// Emptied when the session is reaped.
    lines: Vec<Arc<str>>,
    /// The campaign, parked here until a lane claims it.
    campaign: Option<CampaignConfig>,
    error: Option<String>,
    cache: Option<CacheStats>,
    /// When the session first reached a terminal phase — the baseline the
    /// TTL reaper measures from.
    terminal_at: Option<Instant>,
    /// The line count the log held when it was reaped; snapshots report
    /// this instead of `lines.len()` once the phase is `Reaped`.
    reaped_events: u64,
}

struct Session {
    id: u64,
    study: String,
    priority: u8,
    /// Admission sequence — the FIFO tiebreak within a priority class.
    admitted: u64,
    cancelled: AtomicBool,
    state: Mutex<SessionState>,
    /// Signalled on every appended line and on every phase change.
    wake: Condvar,
}

impl Session {
    fn snapshot(&self) -> SessionSnapshot {
        let state = self.state.lock().expect("session lock");
        SessionSnapshot {
            session: self.id,
            study: self.study.clone(),
            priority: self.priority,
            phase: state.phase,
            events: match state.phase {
                SessionPhase::Reaped => state.reaped_events,
                _ => state.lines.len() as u64,
            },
            error: state.error.clone(),
            cache: state.cache,
        }
    }

    /// Moves the session to a terminal phase and wakes every cursor.
    fn finish(&self, phase: SessionPhase, error: Option<String>, cache: Option<CacheStats>) {
        let mut state = self.state.lock().expect("session lock");
        state.phase = phase;
        state.error = error;
        state.cache = cache;
        state.terminal_at = Some(Instant::now());
        drop(state);
        self.wake.notify_all();
    }
}

/// Service-wide mutable state.
struct ServiceState {
    next_session: u64,
    admitted: u64,
    /// Queued session ids; popped best-(priority, admission order)-first.
    queue: Vec<u64>,
    /// Every session ever admitted, by id (status lists these in
    /// submission order — BTreeMap iteration order is id order, and ids
    /// are assigned in submission order).
    sessions: BTreeMap<u64, Arc<Session>>,
    draining: bool,
}

struct ServiceInner {
    config: ServiceConfig,
    cache: SubarrayCache,
    seeds: IncumbentStore,
    state: Mutex<ServiceState>,
    /// Signalled when the queue gains work or draining starts.
    work: Condvar,
}

impl ServiceInner {
    /// Pops the best queued session, or parks until there is one. `None`
    /// means the service is draining and the queue is empty — the lane
    /// should exit.
    fn claim(&self) -> Option<Arc<Session>> {
        let mut state = self.state.lock().expect("service lock");
        loop {
            if let Some(best) = Self::pop_best(&mut state) {
                return Some(best);
            }
            if state.draining {
                return None;
            }
            state = self.work.wait(state).expect("service lock");
        }
    }

    fn pop_best(state: &mut ServiceState) -> Option<Arc<Session>> {
        let (index, _) = state
            .queue
            .iter()
            .enumerate()
            .map(|(i, id)| {
                let session = &state.sessions[id];
                // Max by priority, then min by admission sequence: negate
                // the sequence into a key where bigger is always better.
                (i, (session.priority, u64::MAX - session.admitted))
            })
            .max_by_key(|&(_, key)| key)?;
        let id = state.queue.swap_remove(index);
        Some(Arc::clone(&state.sessions[&id]))
    }

    /// Reaps terminal sessions whose logs have outlived
    /// [`ServiceConfig::session_ttl`]: frees the retained lines, records
    /// the final count, and moves the phase to
    /// [`SessionPhase::Reaped`]. Invoked lazily from every service entry
    /// point, so expiry needs no background thread. A no-op without a
    /// TTL. Cursors parked on a session it reaps wake and terminate
    /// (their remaining lines are gone — the phase is terminal).
    fn reap_expired(&self, state: &ServiceState) {
        let Some(ttl) = self.config.session_ttl else {
            return;
        };
        let now = Instant::now();
        for session in state.sessions.values() {
            let mut s = session.state.lock().expect("session lock");
            let expired = s.phase.is_terminal()
                && s.phase != SessionPhase::Reaped
                && s.terminal_at
                    .is_some_and(|at| now.duration_since(at) >= ttl);
            if expired {
                s.reaped_events = s.lines.len() as u64;
                s.lines = Vec::new();
                s.phase = SessionPhase::Reaped;
                drop(s);
                session.wake.notify_all();
            }
        }
    }

    /// One lane: claim → run → publish terminal state, forever.
    fn lane(self: &Arc<Self>) {
        while let Some(session) = self.claim() {
            self.run_session(&session);
        }
    }

    fn run_session(&self, session: &Session) {
        let campaign = {
            let mut state = session.state.lock().expect("session lock");
            if session.cancelled.load(Ordering::Acquire) {
                drop(state);
                session.finish(SessionPhase::Cancelled, None, Some(CacheStats::default()));
                return;
            }
            state.phase = SessionPhase::Running;
            state
                .campaign
                .take()
                .expect("a queued session holds its campaign")
        };
        session.wake.notify_all();

        let before = self.cache.stats();
        let mut sink = SessionSink {
            wire: WireSink::sharded(LogWriter::new(session), Shard::WHOLE),
            session,
        };
        let executor = StudyExecutor::with_threads(self.config.workers)
            .cache(&self.cache)
            .seeds(&self.seeds);
        let outcome = match &campaign {
            CampaignConfig::Study(study) => executor.run(study, &mut sink).map(|_| ()),
            CampaignConfig::Fault(fault) => executor.run_fault(fault, &mut sink).map(|_| ()),
        };
        sink.wire.into_inner().flush_partial();
        let delta = self.cache.stats().since(before);

        match outcome {
            Ok(()) => session.finish(SessionPhase::Finished, None, Some(delta)),
            Err(e) => {
                if session.cancelled.load(Ordering::Acquire) {
                    // The sink aborted the run on the cancel flag; the
                    // StudyError is the mechanism, not the diagnosis.
                    session.finish(SessionPhase::Cancelled, None, Some(delta));
                } else {
                    session.finish(SessionPhase::Failed, Some(e.to_string()), Some(delta));
                }
            }
        }
        // Session slabs are published eagerly at drain time; per-session
        // flushes keep the store warm for tenants on *other* service
        // processes sharing the directory.
        if self.config.store.is_some() {
            let _ = self.cache.flush_store();
        }
    }
}

/// The abort error a cancelled session's sink raises; the lane maps it
/// back to [`SessionPhase::Cancelled`] via the session's flag.
const CANCELLED: &str = "session cancelled";

/// Forwards events into the session's wire log, aborting the run between
/// events once the session is cancelled.
struct SessionSink<'s> {
    wire: WireSink<LogWriter<'s>>,
    session: &'s Session,
}

impl ResultSink for SessionSink<'_> {
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
        if self.session.cancelled.load(Ordering::Acquire) {
            return Err(std::io::Error::other(CANCELLED));
        }
        self.wire.on_event(event)
    }
}

/// An [`std::io::Write`] that appends complete lines to the session log,
/// waking cursors as each line lands.
struct LogWriter<'s> {
    session: &'s Session,
    partial: Vec<u8>,
}

impl<'s> LogWriter<'s> {
    fn new(session: &'s Session) -> Self {
        Self {
            session,
            partial: Vec::new(),
        }
    }

    /// Publishes a trailing unterminated line, if any (defensive: the
    /// wire sink always writes whole lines).
    fn flush_partial(self) {
        if !self.partial.is_empty() {
            let line = String::from_utf8_lossy(&self.partial).into_owned();
            let mut state = self.session.state.lock().expect("session lock");
            state.lines.push(Arc::from(line.as_str()));
            drop(state);
            self.session.wake.notify_all();
        }
    }
}

impl std::io::Write for LogWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.partial.extend_from_slice(buf);
        let mut published = false;
        {
            let mut state = self.session.state.lock().expect("session lock");
            while let Some(at) = self.partial.iter().position(|&b| b == b'\n') {
                let rest = self.partial.split_off(at + 1);
                self.partial.pop(); // the newline
                let line = String::from_utf8_lossy(&self.partial).into_owned();
                self.partial = rest;
                state.lines.push(Arc::from(line.as_str()));
                published = true;
            }
        }
        if published {
            self.session.wake.notify_all();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ------------------------------------------------------------- cursors

/// A read position in one session's event log: replays everything already
/// emitted, then follows live.
///
/// Cursors are independent — any number may read one session, and
/// dropping a cursor (a disconnected client) has no effect on the session
/// or on other cursors.
pub struct EventCursor {
    session: Arc<Session>,
    next: usize,
}

impl EventCursor {
    /// Blocks until the next line is available, returning `None` once the
    /// session is terminal and every line has been consumed.
    pub fn next_line(&mut self) -> Option<Arc<str>> {
        let mut state = self.session.state.lock().expect("session lock");
        loop {
            if let Some(line) = state.lines.get(self.next) {
                self.next += 1;
                return Some(Arc::clone(line));
            }
            if state.phase.is_terminal() {
                return None;
            }
            state = self.session.wake.wait(state).expect("session lock");
        }
    }

    /// The lines already consumed through this cursor.
    pub fn consumed(&self) -> usize {
        self.next
    }

    /// A snapshot of the cursor's session (phase, error, cache delta).
    pub fn snapshot(&self) -> SessionSnapshot {
        self.session.snapshot()
    }
}

// ------------------------------------------------------------- service

/// The resident multi-tenant campaign engine. See the [module
/// docs](self) for the full lifecycle.
pub struct CampaignService {
    inner: Arc<ServiceInner>,
    lanes: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl CampaignService {
    /// Starts a service: provisions the shared cache (store-backed when
    /// [`ServiceConfig::store`] is set) and spawns the lane threads.
    ///
    /// # Errors
    ///
    /// When the store directory cannot be created or opened.
    pub fn start(config: ServiceConfig) -> std::io::Result<Self> {
        let cache = match &config.store {
            Some(dir) => SubarrayCache::with_store(dir)?,
            None => SubarrayCache::new(),
        };
        let lanes = config.lanes.max(1);
        let inner = Arc::new(ServiceInner {
            config,
            cache,
            seeds: IncumbentStore::new(),
            state: Mutex::new(ServiceState {
                next_session: 1,
                admitted: 0,
                queue: Vec::new(),
                sessions: BTreeMap::new(),
                draining: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..lanes)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("nvmx-serve-lane-{i}"))
                    .spawn(move || inner.lane())
                    .expect("lane threads spawn")
            })
            .collect();
        Ok(Self {
            inner,
            lanes: Mutex::new(handles),
        })
    }

    /// Validates and admits one campaign config (the raw JSON text of a
    /// config file), returning the session id and queue position.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] when the service is draining, the queue is full, or
    /// the config fails validation.
    pub fn submit(&self, config_json: &str, priority: u8) -> Result<Admission, AdmitError> {
        // Parse outside the lock — config validation is pure CPU.
        let campaign = CampaignConfig::from_json(config_json).map_err(AdmitError::Config)?;
        let study = campaign.name().to_owned();
        let mut state = self.inner.state.lock().expect("service lock");
        self.inner.reap_expired(&state);
        if state.draining {
            return Err(AdmitError::Draining);
        }
        if state.queue.len() >= self.inner.config.capacity {
            return Err(AdmitError::QueueFull {
                capacity: self.inner.config.capacity,
            });
        }
        let id = state.next_session;
        state.next_session += 1;
        let admitted = state.admitted;
        state.admitted += 1;
        let session = Arc::new(Session {
            id,
            study: study.clone(),
            priority,
            admitted,
            cancelled: AtomicBool::new(false),
            state: Mutex::new(SessionState {
                phase: SessionPhase::Queued,
                lines: Vec::new(),
                campaign: Some(campaign),
                error: None,
                cache: None,
                terminal_at: None,
                reaped_events: 0,
            }),
            wake: Condvar::new(),
        });
        let queue_depth = state.queue.len() as u64;
        state.sessions.insert(id, session);
        state.queue.push(id);
        drop(state);
        self.inner.work.notify_one();
        Ok(Admission {
            session: id,
            study,
            queue_depth,
        })
    }

    /// A cursor over `session`'s event log (replay-then-follow), or
    /// `None` for an unknown session id.
    pub fn events(&self, session: u64) -> Option<EventCursor> {
        let state = self.inner.state.lock().expect("service lock");
        self.inner.reap_expired(&state);
        let session = Arc::clone(state.sessions.get(&session)?);
        Some(EventCursor { session, next: 0 })
    }

    /// Cancels a session. Returns `None` for an unknown id; otherwise
    /// `true` when the session was still queued or running (the cancel
    /// had an effect), `false` when it had already reached a terminal
    /// state.
    pub fn cancel(&self, session: u64) -> Option<bool> {
        let session = {
            let state = self.inner.state.lock().expect("service lock");
            self.inner.reap_expired(&state);
            Arc::clone(state.sessions.get(&session)?)
        };
        session.cancelled.store(true, Ordering::Release);
        let phase = session.state.lock().expect("session lock").phase;
        match phase {
            SessionPhase::Queued => {
                // Claimed-but-not-yet-running still passes through the
                // lane's cancelled check; removing from the queue here
                // just skips the pointless claim.
                let mut state = self.inner.state.lock().expect("service lock");
                state.queue.retain(|&id| id != session.id);
                drop(state);
                session.finish(SessionPhase::Cancelled, None, Some(CacheStats::default()));
                Some(true)
            }
            SessionPhase::Running => Some(true),
            terminal => {
                debug_assert!(terminal.is_terminal());
                Some(false)
            }
        }
    }

    /// A snapshot of one session, or `None` for an unknown id.
    pub fn session(&self, session: u64) -> Option<SessionSnapshot> {
        let state = self.inner.state.lock().expect("service lock");
        self.inner.reap_expired(&state);
        state.sessions.get(&session).map(|s| s.snapshot())
    }

    /// A snapshot of the whole service.
    pub fn status(&self) -> ServiceStatus {
        let state = self.inner.state.lock().expect("service lock");
        self.inner.reap_expired(&state);
        let sessions: Vec<SessionSnapshot> =
            state.sessions.values().map(|s| s.snapshot()).collect();
        let reaped = sessions
            .iter()
            .filter(|s| s.phase == SessionPhase::Reaped)
            .count() as u64;
        ServiceStatus {
            draining: state.draining,
            queue_depth: state.queue.len() as u64,
            capacity: self.inner.config.capacity as u64,
            sessions,
            reaped,
            cache: self.inner.cache.stats(),
        }
    }

    /// Cumulative shared-cache counters since the service started.
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache.stats()
    }

    /// Begins draining: no further submissions are admitted; queued and
    /// running sessions complete normally. Idempotent.
    pub fn shutdown(&self) {
        let mut state = self.inner.state.lock().expect("service lock");
        state.draining = true;
        drop(state);
        self.inner.work.notify_all();
    }

    /// Drains and joins the lanes, then flushes the store. Every queued
    /// session has reached a terminal state when this returns. Callable
    /// through a shared handle (the daemon's connection handlers hold the
    /// service in an `Arc`); concurrent drains are safe — the second
    /// caller finds no lanes left to join.
    ///
    /// # Errors
    ///
    /// When the final store flush fails (sessions have still all
    /// completed; only slab publication is affected).
    pub fn drain(&self) -> std::io::Result<CacheStats> {
        self.shutdown();
        let handles: Vec<_> = self
            .lanes
            .lock()
            .expect("lane registry")
            .drain(..)
            .collect();
        for lane in handles {
            let _ = lane.join();
        }
        if self.inner.config.store.is_some() {
            self.inner.cache.flush_store()?;
        }
        Ok(self.inner.cache.stats())
    }

    /// [`drain`](Self::drain), consuming the service.
    ///
    /// # Errors
    ///
    /// Same as [`drain`](Self::drain).
    pub fn join(self) -> std::io::Result<CacheStats> {
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONFIG: &str = r#"{
        "name": "service-unit",
        "cells": {"technologies": ["Stt"],
                  "reference_rram": false, "sram_baseline": false},
        "array": {"capacities_mib": [2], "word_bits": 64,
                  "targets": ["ReadEdp"]},
        "traffic": {"kind": "explicit", "patterns": [
            {"name": "t", "read_bytes_per_sec": 1.0e9,
             "write_bytes_per_sec": 1.0e7, "access_bytes": 64}]}
    }"#;

    fn drain_lines(cursor: &mut EventCursor) -> Vec<Arc<str>> {
        let mut lines = Vec::new();
        while let Some(line) = cursor.next_line() {
            lines.push(line);
        }
        lines
    }

    #[test]
    fn submit_run_and_replay_a_session() {
        let service = CampaignService::start(ServiceConfig::default()).unwrap();
        let admitted = service.submit(CONFIG, 0).expect("config admits");
        assert_eq!(admitted.study, "service-unit");
        let mut cursor = service.events(admitted.session).expect("session exists");
        let lines = drain_lines(&mut cursor);
        let snapshot = cursor.snapshot();
        assert!(
            lines.len() > 2,
            "a run emits at least the bracketing events; session ended {:?} ({:?})",
            snapshot.phase,
            snapshot.error
        );
        assert_eq!(snapshot.phase, SessionPhase::Finished);
        assert_eq!(snapshot.events, lines.len() as u64);
        let delta = snapshot.cache.expect("terminal sessions carry a delta");
        assert!(delta.lookups() > 0, "the session touched the shared cache");

        // The log replays strictly through the wire machinery.
        let text = lines
            .iter()
            .map(|l| l.as_ref())
            .collect::<Vec<_>>()
            .join("\n");
        let replayed = crate::wire::replay(std::io::Cursor::new(text)).expect("log replays");
        assert_eq!(replayed.study, "service-unit");
        assert_eq!(replayed.frames, lines.len() as u64);

        // A late cursor sees the identical log.
        let mut again = service.events(admitted.session).expect("still known");
        assert_eq!(drain_lines(&mut again), lines);

        let stats = service.join().expect("drains clean");
        assert!(stats.lookups() > 0);
    }

    #[test]
    fn admission_rejects_bad_configs_full_queues_and_draining() {
        let service = CampaignService::start(ServiceConfig {
            capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(matches!(
            service.submit("{not json", 0),
            Err(AdmitError::Config(_))
        ));
        assert!(matches!(
            service.submit(CONFIG, 0),
            Err(AdmitError::QueueFull { capacity: 0 })
        ));
        service.shutdown();
        assert!(matches!(
            service.submit(CONFIG, 0),
            Err(AdmitError::Draining)
        ));
        service.join().expect("drains clean");
    }

    #[test]
    fn priority_orders_the_queue_and_ties_break_fifo() {
        let mut state = ServiceState {
            next_session: 1,
            admitted: 0,
            queue: Vec::new(),
            sessions: BTreeMap::new(),
            draining: false,
        };
        for (id, priority) in [(1, 0), (2, 9), (3, 9), (4, 4)] {
            state.sessions.insert(
                id,
                Arc::new(Session {
                    id,
                    study: "s".into(),
                    priority,
                    admitted: id,
                    cancelled: AtomicBool::new(false),
                    state: Mutex::new(SessionState {
                        phase: SessionPhase::Queued,
                        lines: Vec::new(),
                        campaign: None,
                        error: None,
                        cache: None,
                        terminal_at: None,
                        reaped_events: 0,
                    }),
                    wake: Condvar::new(),
                }),
            );
            state.queue.push(id);
        }
        let order: Vec<u64> = std::iter::from_fn(|| ServiceInner::pop_best(&mut state))
            .map(|s| s.id)
            .collect();
        assert_eq!(
            order,
            vec![2, 3, 4, 1],
            "priority desc, FIFO within a class"
        );
    }

    #[test]
    fn cancelling_a_queued_session_never_runs_it() {
        // No lanes are started: drive the queue by hand so the session
        // stays queued for the cancel.
        let service = CampaignService::start(ServiceConfig {
            lanes: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Park the lane on a long-running session first? Simpler: cancel
        // races admission here; both orders must end Cancelled or
        // Finished, never Failed.
        let admitted = service.submit(CONFIG, 0).expect("admits");
        let active = service.cancel(admitted.session).expect("known session");
        let _ = active;
        let mut cursor = service.events(admitted.session).expect("known session");
        let _ = drain_lines(&mut cursor);
        let phase = cursor.snapshot().phase;
        assert!(
            matches!(phase, SessionPhase::Cancelled | SessionPhase::Finished),
            "cancel must never fail a session, got {phase:?}"
        );
        assert!(
            matches!(service.cancel(admitted.session), Some(false)),
            "terminal sessions report the cancel as a no-op"
        );
        assert_eq!(service.cancel(999), None);
        service.join().expect("drains clean");
    }

    #[test]
    fn session_ttl_reaps_terminal_logs_but_keeps_the_row() {
        let service = CampaignService::start(ServiceConfig {
            session_ttl: Some(Duration::ZERO),
            ..ServiceConfig::default()
        })
        .unwrap();
        let admitted = service.submit(CONFIG, 0).expect("admits");
        let mut cursor = service.events(admitted.session).expect("known");
        let lines = drain_lines(&mut cursor);
        assert!(lines.len() > 2, "the session ran");

        // Any entry point sweeps; with a zero TTL the first touch after
        // the terminal transition reaps the log.
        let status = service.status();
        assert_eq!(status.reaped, 1);
        let row = &status.sessions[0];
        assert_eq!(row.phase, SessionPhase::Reaped);
        assert!(row.phase.is_terminal());
        assert_eq!(row.brief().state, "reaped");
        assert_eq!(
            row.events,
            lines.len() as u64,
            "the final event count survives the reap"
        );

        // The lines themselves are gone: a fresh cursor terminates dry.
        let mut late = service.events(admitted.session).expect("still listed");
        assert_eq!(drain_lines(&mut late), Vec::<Arc<str>>::new());
        // Cancelling a reaped session is a terminal no-op.
        assert!(matches!(service.cancel(admitted.session), Some(false)));
        service.join().expect("drains clean");
    }

    #[test]
    fn without_a_ttl_nothing_is_ever_reaped() {
        let service = CampaignService::start(ServiceConfig::default()).unwrap();
        let admitted = service.submit(CONFIG, 0).expect("admits");
        let mut cursor = service.events(admitted.session).expect("known");
        let lines = drain_lines(&mut cursor);
        let status = service.status();
        assert_eq!(status.reaped, 0);
        assert_eq!(status.sessions[0].phase, SessionPhase::Finished);
        let mut again = service.events(admitted.session).expect("known");
        assert_eq!(drain_lines(&mut again).len(), lines.len());
        service.join().expect("drains clean");
    }

    #[test]
    fn status_reports_queue_sessions_and_cache() {
        let service = CampaignService::start(ServiceConfig::default()).unwrap();
        let admitted = service.submit(CONFIG, 3).expect("admits");
        let mut cursor = service.events(admitted.session).expect("known");
        let _ = drain_lines(&mut cursor);
        let status = service.status();
        assert_eq!(status.capacity, 64);
        assert_eq!(status.sessions.len(), 1);
        let row = status.sessions[0].brief();
        assert_eq!(row.session, admitted.session);
        assert_eq!(row.priority, 3);
        assert_eq!(row.state, "finished");
        assert!(row.events > 0);
        service.join().expect("drains clean");
    }
}
