//! NVMExplorer-RS — a cross-stack design-space-exploration framework for
//! embedded non-volatile memories.
//!
//! This crate is the Rust reproduction of *NVMExplorer: A Framework for
//! Cross-Stack Comparisons of Embedded Non-Volatile Memories* (HPCA 2022).
//! It ties together the cell survey + tentpole methodology
//! ([`nvmx_celldb`]), the NVSim-class array simulator ([`nvmx_nvsim`]), the
//! fault-injection engine ([`nvmx_fault`]), and the workload substrates
//! ([`nvmx_workloads`]) behind one configuration-driven flow:
//!
//! 1. [`config::StudyConfig`] — JSON-loadable cross-stack study spec (with
//!    a per-study [`config::OutputSpec`] naming where results stream),
//! 2. [`sweep::run_study`] — expand + characterize + evaluate (batch), or
//!    [`stream::StudyExecutor`] — the same engine pushing a deterministic
//!    [`stream::StudyEvent`] stream to [`stream::ResultSink`]s while it
//!    runs,
//! 3. [`scheduler::StudyScheduler`] — shard a queue of studies across
//!    concurrent lanes over one warm subarray cache,
//! 4. [`wire`] — the versioned JSONL wire protocol carrying the event
//!    stream across process/host boundaries ([`wire::WireSink`] shard
//!    writers, [`wire::SlotMerger`] slot-order merging, [`wire::replay`]
//!    deterministic capture replay) — what the `nvmx-worker` /
//!    `nvmx-coordinator` binaries speak,
//! 5. [`explore::ResultSet`] — filter/rank the results like the paper's
//!    interactive dashboard,
//! 6. [`intermittent`], [`write_buffer`], [`accuracy`] — the specialized
//!    models behind Figs. 6/7, 14, and 13.
//!
//! # Examples
//!
//! End-to-end: compare eNVMs as the 2 MB weight buffer of a DNN
//! accelerator at 60 FPS and pick the lowest-power feasible option.
//!
//! ```
//! use nvmexplorer_core::config::{StudyConfig, TrafficSpec};
//! use nvmexplorer_core::explore::{Objective, ResultSet};
//! use nvmexplorer_core::sweep::run_study;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut study = StudyConfig {
//!     name: "quickstart".into(),
//!     cells: Default::default(),
//!     array: Default::default(),
//!     traffic: TrafficSpec::DnnContinuous {
//!         model: "resnet26".into(),
//!         tasks: 1,
//!         store_activations: false,
//!         fps: 60.0,
//!     },
//!     constraints: Default::default(),
//!     output: Default::default(),
//!     store: Default::default(),
//! };
//! study.cells.technologies = Some(vec![nvmx_celldb::TechnologyClass::Stt]);
//! let result = run_study(&study)?;
//! let set = ResultSet::new(result.evaluations).feasible();
//! let best = set.best(Objective::TotalPower).expect("some design survives");
//! assert!(best.is_feasible());
//! # Ok(())
//! # }
//! ```

// Every public item must explain itself: this crate *is* the reproduced
// methodology, and the rustdoc is the map from code to paper sections.
// CI builds the docs with `-D warnings`, so broken intra-doc links fail too.
#![deny(missing_docs)]

pub mod accuracy;
pub mod config;
pub mod eval;
pub mod explore;
pub mod fault_study;
pub mod fsutil;
pub mod intermittent;
pub mod reshard;
pub mod scheduler;
pub mod service;
pub mod stream;
pub mod sweep;
pub mod transport;
pub mod wire;
pub mod write_buffer;

pub use config::{CampaignConfig, FaultSpec, FaultStudyConfig, OutputSpec, StoreSpec, StudyConfig};
pub use eval::{evaluate, evaluate_shared, Evaluation};
pub use explore::{Objective, ResultSet};
pub use fault_study::{
    injection_seed, FaultModelReport, FaultOutcome, FaultStudyResult, FaultStudyStats, FaultTrial,
};
pub use scheduler::{SchedulerReport, StudyOutcome, StudyScheduler};
pub use service::{
    Admission, AdmitError, CampaignService, EventCursor, ServiceConfig, ServiceStatus,
    SessionPhase, SessionSnapshot,
};
pub use stream::{
    MultiSink, NullSink, ResultSink, StudyEvent, StudyExecutor, StudyResultBuilder, StudyStats,
};
pub use sweep::{run_study, StudyResult};
pub use wire::{
    LeaseFrame, OwnedStudyEvent, RequestFrame, ResponseFrame, SessionBrief, Shard, SlotMerger,
    StreamReplayer, WireError, WireFrame, WireSink, WorkerFrame, WIRE_MIN_VERSION,
    WIRE_SERVICE_MIN_VERSION, WIRE_VERSION, WIRE_WORKER_MIN_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use config::TrafficSpec;

    #[test]
    fn crate_level_flow_works() {
        let mut study = StudyConfig {
            name: "smoke".into(),
            cells: Default::default(),
            array: Default::default(),
            traffic: TrafficSpec::Explicit {
                patterns: vec![nvmx_workloads::TrafficPattern::new("t", 1.0e9, 1.0e6, 64)],
            },
            constraints: Default::default(),
            output: Default::default(),
            store: Default::default(),
        };
        study.cells.technologies = Some(vec![nvmx_celldb::TechnologyClass::Pcm]);
        study.cells.sram_baseline = false;
        study.cells.reference_rram = false;
        let result = run_study(&study).unwrap();
        assert_eq!(result.arrays.len(), 2);
        let set = ResultSet::new(result.evaluations);
        assert!(set.best(Objective::TotalPower).is_some());
    }
}
