//! Atomic file publication, re-exported for the engine's consumers.
//!
//! The implementation lives in [`nvmx_nvsim::fsutil`] (the lowest crate
//! that needs it — the characterization store publishes slabs through it);
//! this module re-exports it so artifact writers above `core` (campaign
//! CSVs, bench reports, coordinator wire captures) share the exact same
//! temp+rename protocol instead of hand-rolling dot-tmp siblings.

pub use nvmx_nvsim::fsutil::{write_file_atomic, AtomicFileWriter};
