//! Write-buffer analytical model (paper Sec. V-D, Fig. 14).
//!
//! A small, fast write cache in front of an eNVM array can (a) *mask* the
//! array's write latency from the system and (b) *coalesce* repeated writes
//! to the same address, reducing the write traffic that reaches the eNVM.
//! Rather than commit to a cycle-accurate design, the paper sweeps the two
//! effects analytically to decide whether a write buffer could make slow
//! writers (FeFETs in particular) viable — this module is that sweep.

use crate::eval::{evaluate, Evaluation};
use nvmx_nvsim::ArrayCharacterization;
use nvmx_units::Seconds;
use nvmx_workloads::TrafficPattern;
use serde::{Deserialize, Serialize};

/// A write-buffer configuration expressed by its two analytical effects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WriteBuffer {
    /// Fraction of array write latency hidden from the system
    /// (0 = none, 1 = fully masked while the buffer drains in background).
    pub latency_mask: f64,
    /// Fraction of write traffic absorbed by in-place updates in the buffer
    /// (0 = all writes reach the eNVM, 0.5 = write traffic halved).
    pub coalescing: f64,
}

impl WriteBuffer {
    /// No buffering — the baseline.
    pub const NONE: Self = Self {
        latency_mask: 0.0,
        coalescing: 0.0,
    };

    /// Creates a configuration, clamping both effects into `[0, 1]`.
    pub fn new(latency_mask: f64, coalescing: f64) -> Self {
        Self {
            latency_mask: latency_mask.clamp(0.0, 1.0),
            coalescing: coalescing.clamp(0.0, 1.0),
        }
    }

    /// The paper's Fig. 14 sweep points: latency masking only, and write
    /// traffic reduced by 25 %, 50 %, and 100 % (perfect coalescing).
    pub fn fig14_sweep() -> Vec<(String, Self)> {
        vec![
            ("no buffer".to_owned(), Self::NONE),
            ("mask latency".to_owned(), Self::new(1.0, 0.0)),
            ("mask + coalesce 25%".to_owned(), Self::new(1.0, 0.25)),
            ("mask + coalesce 50%".to_owned(), Self::new(1.0, 0.50)),
            ("mask + coalesce 100%".to_owned(), Self::new(1.0, 1.0)),
        ]
    }
}

/// Evaluates `array` under `traffic` with a write buffer in front.
///
/// Coalescing reduces the write traffic that reaches (and wears) the array;
/// latency masking removes the masked fraction of write latency from the
/// aggregate-latency metric and the utilization check (drains overlap with
/// reads in other banks). Write *energy* still pays for every drained write.
pub fn evaluate_with_buffer(
    array: &ArrayCharacterization,
    traffic: &TrafficPattern,
    buffer: WriteBuffer,
) -> Evaluation {
    let reduced = traffic.with_write_traffic_scaled(1.0 - buffer.coalescing);
    let mut eval = evaluate(array, &reduced);

    if buffer.latency_mask > 0.0 {
        let masked_write_latency =
            Seconds::new(array.write_latency.value() * (1.0 - buffer.latency_mask));
        // Re-derive the latency aggregate and utilization with the masked
        // write cost: buffered drains overlap with reads to other banks, so
        // masked writes occupy only a quarter of their raw cycle.
        eval.aggregate_latency = array.read_latency * eval.array_reads_per_sec
            + masked_write_latency * eval.array_writes_per_sec;
        let interleave = (array.organization.groups() as f64).min(4.0);
        let write_occupancy = eval.array_writes_per_sec
            * array.write_cycle.value()
            * (1.0 - buffer.latency_mask * 0.75);
        eval.utilization =
            (eval.array_reads_per_sec * array.read_cycle.value() + write_occupancy) / interleave;
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
    use nvmx_nvsim::{characterize, ArrayConfig};
    use nvmx_units::Capacity;

    fn fefet_array() -> ArrayCharacterization {
        let cell = tentpole::tentpole_cell(TechnologyClass::FeFet, CellFlavor::Optimistic).unwrap();
        characterize(
            &cell,
            &ArrayConfig::new(Capacity::from_mebibytes(8)).with_word_bits(512),
        )
        .unwrap()
    }

    fn heavy_writes() -> TrafficPattern {
        // Facebook-BFS-class scratchpad traffic: word-granularity accesses,
        // write rate at the top of the paper's graph envelope.
        TrafficPattern::new("bfs-like", 4.0e9, 400.0e6, 8)
    }

    #[test]
    fn buffering_recovers_feasibility_for_fefet() {
        // Paper Fig. 14: with write traffic reduced by at least half, FeFET
        // emerges as a performant option for Facebook-Graph-BFS.
        let array = fefet_array();
        let traffic = heavy_writes();
        let bare = evaluate_with_buffer(&array, &traffic, WriteBuffer::NONE);
        let buffered = evaluate_with_buffer(&array, &traffic, WriteBuffer::new(1.0, 0.5));
        assert!(!bare.is_feasible(), "bare utilization {}", bare.utilization);
        assert!(
            buffered.is_feasible(),
            "buffered utilization {}",
            buffered.utilization
        );
    }

    #[test]
    fn coalescing_extends_lifetime() {
        let array = fefet_array();
        let traffic = heavy_writes();
        let bare = evaluate_with_buffer(&array, &traffic, WriteBuffer::NONE);
        let coalesced = evaluate_with_buffer(&array, &traffic, WriteBuffer::new(0.0, 0.5));
        assert!(coalesced.lifetime_years() > 1.9 * bare.lifetime_years());
    }

    #[test]
    fn masking_reduces_aggregate_latency() {
        let array = fefet_array();
        let traffic = heavy_writes();
        let bare = evaluate_with_buffer(&array, &traffic, WriteBuffer::NONE);
        let masked = evaluate_with_buffer(&array, &traffic, WriteBuffer::new(1.0, 0.0));
        assert!(masked.aggregate_latency.value() < bare.aggregate_latency.value());
        // Reads are untouched.
        assert_eq!(masked.read_power, bare.read_power);
    }

    #[test]
    fn full_coalescing_removes_write_power() {
        let array = fefet_array();
        let traffic = heavy_writes();
        let perfect = evaluate_with_buffer(&array, &traffic, WriteBuffer::new(1.0, 1.0));
        assert_eq!(perfect.write_power.value(), 0.0);
        assert!(perfect.lifetime.is_none());
    }

    #[test]
    fn config_clamps_inputs() {
        let b = WriteBuffer::new(3.0, -1.0);
        assert_eq!(b.latency_mask, 1.0);
        assert_eq!(b.coalescing, 0.0);
    }

    #[test]
    fn sweep_has_five_points() {
        assert_eq!(WriteBuffer::fig14_sweep().len(), 5);
    }
}
