//! The versioned JSONL wire protocol: [`StudyEvent`]s serialized across a
//! process/host boundary, with strict parsing, slot-order merging, and
//! deterministic replay — plus the service request/response frames the
//! `nvmx-serve` daemon speaks (protocol version 3).
//!
//! **The normative specification of this protocol — every version, every
//! frame type, field tables, version-skew and replay rules — lives in
//! [`docs/PROTOCOL.md`](https://github.com/nvmexplorer/nvmexplorer-rs/blob/main/docs/PROTOCOL.md)
//! at the repository root. That document is the source of truth; this
//! module implements it, and CI greps the two against each other.**
//!
//! # Format
//!
//! A wire line is the [`JsonlSink`](../../nvmx_viz/sink/struct.JsonlSink.html)
//! event object *extended* with a three-field header — not a second format:
//!
//! ```text
//! {"v":3,"study":"quickstart","seq":7,"event":"evaluation_produced",...}
//! ```
//!
//! - `v` — protocol version ([`WIRE_VERSION`]; readers accept the whole
//!   [`WIRE_MIN_VERSION`]`..=`[`WIRE_VERSION`] range, so v1 pre-fault and
//!   v2 pre-service captures still replay). Any other value is rejected
//!   instead of guessed at.
//! - `study` — the study name, stamped on every line so interleaved or
//!   concatenated captures stay attributable.
//! - `seq` — the event's position in the engine's deterministic slot-order
//!   stream, starting at 0 for `study_started`. Because the stream is
//!   identical at any thread count, `seq` is a *global coordinate*: two
//!   workers running the same study agree on which event is number 17.
//!
//! Everything after the header is byte-identical to what
//! `serde_json::to_string(&event)` produces, so a bare JSONL file (no
//! header) written by `JsonlSink` parses with the same event decoder
//! ([`OwnedStudyEvent::from_value`]).
//!
//! # Sharding and resume
//!
//! [`WireSink`] stamps the header and can *shard*: a sink configured as
//! shard `i/n` emits only the lines whose `seq % n == i`. N workers running
//! the same study with shards `0/n .. n-1/n` therefore partition the stream
//! exactly, and a coordinator merges them back with [`SlotMerger`], which
//! buffers out-of-order arrivals and silently drops duplicate slots — so
//! re-spawning a dead worker (which replays its whole residue class) is
//! idempotent by construction.
//!
//! # Replay
//!
//! [`replay`] rebuilds a [`StudyResult`] from a captured stream via
//! [`StudyResultBuilder`] — byte-identical to the in-process run, proven by
//! proptest in `tests/wire_roundtrip.rs`. Replay is *strict*: unknown
//! versions, malformed lines, out-of-order or duplicate slots, study-name
//! changes mid-stream, and truncation (no terminal `study_finished` /
//! `fault_study_finished`) are all hard errors, because a campaign capture
//! that silently tolerated any of those could not serve as an audit
//! record. Fault-campaign captures additionally rebuild the
//! [`FaultOutcome`] (trials, per-model verdicts, final counters) from the
//! version-2 fault events.

use crate::accuracy::AccuracyReport;
use crate::eval::Evaluation;
use crate::fault_study::{FaultModelReport, FaultOutcome, FaultStudyStats, FaultTrial};
use crate::stream::{ResultSink, StudyEvent, StudyResultBuilder, StudyStats};
use crate::sweep::StudyResult;
use nvmx_nvsim::{ArrayCharacterization, CacheStats, L2RejectClasses, OptimizationTarget};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

/// The wire protocol version stamped on every written line.
///
/// Version 4 (this release) adds the worker-supervision control frames
/// ([`WorkerFrame`], [`LeaseFrame`]) that socket-connected `nvmx-worker`
/// shards and the lease-granting coordinator speak, plus the optional
/// per-class `l2_reject_*` store counters on the `study_finished` cache
/// object. The event-frame format is otherwise unchanged from version 3
/// (which added the service request/response frames [`RequestFrame`] /
/// [`ResponseFrame`]), version 2 (fault-campaign events), and version 1.
/// Readers accept every version down to [`WIRE_MIN_VERSION`] — pre-fault,
/// pre-service, and pre-lease captures replay unchanged; every other
/// version is rejected instead of guessed at. Re-encoding a parsed frame
/// always stamps the current version.
pub const WIRE_VERSION: u64 = 4;

/// The oldest protocol version readers still decode.
pub const WIRE_MIN_VERSION: u64 = 1;

/// The oldest protocol version that carries service request/response
/// frames. Event streams exist since version 1; `submit`/`status`/
/// `cancel`/`events`/`shutdown` requests (and their responses) only since
/// version 3 — a request line declaring an older version is rejected.
pub const WIRE_SERVICE_MIN_VERSION: u64 = 3;

/// The oldest protocol version that carries worker-supervision control
/// frames. `hello`/`heartbeat`/`drained`/`done` worker lines and
/// `grant`/`revoke`/`shutdown` lease lines exist only since version 4 —
/// a control line declaring an older version is rejected, because no
/// older writer ever produced one.
pub const WIRE_WORKER_MIN_VERSION: u64 = 4;

// --------------------------------------------------------------- errors

/// Why a wire stream was rejected.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// A line was not a valid wire frame (malformed JSON, missing fields,
    /// unknown event tag, wrong field types).
    Corrupt {
        /// 1-based line number.
        line: u64,
        /// What was wrong.
        reason: String,
    },
    /// The line declared a protocol version this reader does not speak.
    Version {
        /// 1-based line number.
        line: u64,
        /// The version the line declared.
        found: u64,
    },
    /// A slot arrived more than once (strict readers only — [`SlotMerger`]
    /// dedups silently, because resume *depends* on replayed duplicates).
    DuplicateSlot {
        /// 1-based line number.
        line: u64,
        /// The repeated slot.
        seq: u64,
    },
    /// A slot arrived out of order (strict readers require `0, 1, 2, …`).
    OutOfOrder {
        /// 1-based line number.
        line: u64,
        /// The slot the reader expected next.
        expected: u64,
        /// The slot the line carried.
        found: u64,
    },
    /// The study name changed mid-stream.
    StudyMismatch {
        /// 1-based line number.
        line: u64,
        /// The name the stream opened with.
        expected: String,
        /// The name this line carried.
        found: String,
    },
    /// The stream ended without a terminal event (`study_finished`, or
    /// `fault_study_finished` for fault campaigns).
    Truncated {
        /// Frames successfully read before the end.
        frames: u64,
    },
    /// A winner line referenced an evaluation the stream never carried.
    UnknownWinner {
        /// 1-based line number.
        line: u64,
        /// The winning cell the line named.
        cell: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire stream I/O error: {e}"),
            Self::Corrupt { line, reason } => write!(f, "corrupt wire line {line}: {reason}"),
            Self::Version { line, found } => write!(
                f,
                "wire line {line} declares protocol version {found}, this reader speaks {WIRE_MIN_VERSION}..={WIRE_VERSION}"
            ),
            Self::DuplicateSlot { line, seq } => {
                write!(f, "wire line {line} repeats slot {seq}")
            }
            Self::OutOfOrder {
                line,
                expected,
                found,
            } => write!(
                f,
                "wire line {line} is out of order: expected slot {expected}, got {found}"
            ),
            Self::StudyMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "wire line {line} switches study from `{expected}` to `{found}`"
            ),
            Self::Truncated { frames } => write!(
                f,
                "wire stream truncated: {frames} frames but no study_finished"
            ),
            Self::UnknownWinner { line, cell } => write!(
                f,
                "wire line {line} declares winner `{cell}` but no such evaluation streamed"
            ),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Why one line failed to parse (lifted into [`WireError`] with a line
/// number by the readers).
#[derive(Debug)]
pub enum FrameError {
    /// The line declared an unsupported protocol version.
    Version {
        /// The declared version.
        found: u64,
    },
    /// The line was malformed.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
}

impl FrameError {
    fn corrupt(reason: impl Into<String>) -> Self {
        Self::Corrupt {
            reason: reason.into(),
        }
    }

    fn at(self, line: u64) -> WireError {
        match self {
            Self::Version { found } => WireError::Version { line, found },
            Self::Corrupt { reason } => WireError::Corrupt { line, reason },
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Version { found } => write!(
                f,
                "frame declares protocol version {found}, this reader speaks {WIRE_MIN_VERSION}..={WIRE_VERSION}"
            ),
            Self::Corrupt { reason } => write!(f, "corrupt frame: {reason}"),
        }
    }
}

impl std::error::Error for FrameError {}

// ----------------------------------------------------------- owned events

/// An owned [`StudyEvent`]: what a wire line decodes to.
///
/// The borrowed event type borrows from the engine's result slots, so it
/// cannot cross a process boundary; this type owns its payloads and
/// converts back with [`Self::as_event`] to feed any [`ResultSink`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedStudyEvent {
    /// See [`StudyEvent::StudyStarted`].
    StudyStarted {
        /// Study name.
        name: String,
        /// Resolved cell count.
        cells: usize,
        /// Shared-DSE jobs expanded.
        jobs: usize,
        /// Optimization targets swept.
        targets: usize,
        /// Resolved traffic patterns.
        traffic: usize,
    },
    /// See [`StudyEvent::ArrayCharacterized`].
    ArrayCharacterized {
        /// Slot index in the deterministic output order.
        index: usize,
        /// The characterized design point.
        array: ArrayCharacterization,
    },
    /// See [`StudyEvent::DesignSkipped`].
    DesignSkipped {
        /// Cell name of the failed design point.
        cell: String,
        /// Target this skip is reported under.
        target: OptimizationTarget,
        /// Human-readable reason.
        reason: String,
    },
    /// See [`StudyEvent::EvaluationProduced`].
    EvaluationProduced {
        /// Slot index in the deterministic order.
        index: usize,
        /// The evaluation.
        evaluation: Evaluation,
    },
    /// See [`StudyEvent::TargetWinnerSelected`]. The wire carries the
    /// winner's identity (cell, traffic, total power), not the full
    /// evaluation — the evaluation itself already streamed as an earlier
    /// `evaluation_produced` line, and [`EventReplayer`] re-links the two.
    TargetWinnerSelected {
        /// The optimization target.
        target: OptimizationTarget,
        /// Winning cell name.
        cell: String,
        /// Winning traffic pattern name.
        traffic: String,
        /// The winner's total power in watts (bit-exact on the wire).
        total_power_w: f64,
    },
    /// See [`StudyEvent::StudyFinished`].
    StudyFinished {
        /// Study name.
        name: String,
        /// Final counters.
        stats: StudyStats,
    },
    /// See [`StudyEvent::FaultTrialProduced`] (protocol version 2).
    FaultTrialProduced {
        /// Trial slot index.
        index: usize,
        /// The trial record, injection seed included.
        trial: FaultTrial,
    },
    /// See [`StudyEvent::AccuracyDegraded`] (protocol version 2).
    AccuracyDegraded {
        /// Model index in the campaign's expansion order.
        index: usize,
        /// The per-model accuracy verdict.
        report: FaultModelReport,
    },
    /// See [`StudyEvent::FaultStudyFinished`] (protocol version 2) — the
    /// terminal event of fault-campaign streams.
    FaultStudyFinished {
        /// Study name.
        name: String,
        /// Final counters (base study + fault phase).
        stats: FaultStudyStats,
    },
}

fn field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v Value, FrameError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| FrameError::corrupt(format!("missing field `{name}`")))
}

fn uint_field(obj: &[(String, Value)], name: &str) -> Result<u64, FrameError> {
    field(obj, name)?
        .as_u64()
        .ok_or_else(|| FrameError::corrupt(format!("field `{name}` is not an unsigned integer")))
}

/// Like [`uint_field`], but a *missing* field decodes as `default` (a
/// present-but-malformed one is still corrupt). For counters added to the
/// version-1 cache object after the fact — older captures simply never
/// observed them.
fn uint_field_or(obj: &[(String, Value)], name: &str, default: u64) -> Result<u64, FrameError> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(default),
        Some((_, v)) => v.as_u64().ok_or_else(|| {
            FrameError::corrupt(format!("field `{name}` is not an unsigned integer"))
        }),
    }
}

fn usize_field(obj: &[(String, Value)], name: &str) -> Result<usize, FrameError> {
    usize::try_from(uint_field(obj, name)?)
        .map_err(|_| FrameError::corrupt(format!("field `{name}` out of range")))
}

fn str_field<'v>(obj: &'v [(String, Value)], name: &str) -> Result<&'v str, FrameError> {
    field(obj, name)?
        .as_str()
        .ok_or_else(|| FrameError::corrupt(format!("field `{name}` is not a string")))
}

fn float_field(obj: &[(String, Value)], name: &str) -> Result<f64, FrameError> {
    field(obj, name)?
        .as_f64()
        .ok_or_else(|| FrameError::corrupt(format!("field `{name}` is not a number")))
}

fn bool_field(obj: &[(String, Value)], name: &str) -> Result<bool, FrameError> {
    field(obj, name)?
        .as_bool()
        .ok_or_else(|| FrameError::corrupt(format!("field `{name}` is not a boolean")))
}

fn u32_field(obj: &[(String, Value)], name: &str) -> Result<u32, FrameError> {
    u32::try_from(uint_field(obj, name)?)
        .map_err(|_| FrameError::corrupt(format!("field `{name}` out of range")))
}

fn target_field(obj: &[(String, Value)], name: &str) -> Result<OptimizationTarget, FrameError> {
    let label = str_field(obj, name)?;
    OptimizationTarget::ALL
        .into_iter()
        .find(|t| t.label() == label)
        .ok_or_else(|| FrameError::corrupt(format!("unknown optimization target `{label}`")))
}

/// Decodes the per-class `l2_reject_*` counters of a wire cache object.
/// The writer emits each class only when nonzero (a clean run's cache
/// object is byte-identical to a v3 writer's), so every class decodes
/// with a zero default.
fn reject_classes_from(cache: &[(String, Value)]) -> Result<L2RejectClasses, FrameError> {
    Ok(L2RejectClasses {
        io: uint_field_or(cache, "l2_reject_io", 0)?,
        version: uint_field_or(cache, "l2_reject_version", 0)?,
        truncated: uint_field_or(cache, "l2_reject_truncated", 0)?,
        corrupt: uint_field_or(cache, "l2_reject_corrupt", 0)?,
        collision: uint_field_or(cache, "l2_reject_collision", 0)?,
    })
}

/// Appends the nonzero per-class `l2_reject_*` counters to a cache object
/// under construction — the encoding mirror of [`reject_classes_from`].
fn push_reject_classes(fields: &mut Vec<(String, Value)>, classes: &L2RejectClasses) {
    for (name, count) in [
        ("l2_reject_io", classes.io),
        ("l2_reject_version", classes.version),
        ("l2_reject_truncated", classes.truncated),
        ("l2_reject_corrupt", classes.corrupt),
        ("l2_reject_collision", classes.collision),
    ] {
        if count != 0 {
            fields.push((name.to_owned(), Value::Uint(count)));
        }
    }
}

/// Decodes the flat field block shared by `study_finished` and
/// `fault_study_finished`.
fn finished_stats(obj: &[(String, Value)]) -> Result<StudyStats, FrameError> {
    let cache = match field(obj, "cache")? {
        Value::Null => None,
        // `pruned` joined the version-1 cache object in PR 5, the `l2_*`
        // store counters in PR 8, the per-class `l2_reject_*` breakdown in
        // v4; captures from older writers decode as zeros instead of
        // failing strict replay.
        Value::Object(cache) => Some(CacheStats {
            hits: uint_field(cache, "hits")?,
            misses: uint_field(cache, "misses")?,
            pruned: uint_field_or(cache, "pruned", 0)?,
            l2_hits: uint_field_or(cache, "l2_hits", 0)?,
            l2_misses: uint_field_or(cache, "l2_misses", 0)?,
            l2_rejects: uint_field_or(cache, "l2_rejects", 0)?,
            l2_reject_classes: reject_classes_from(cache)?,
        }),
        other => {
            return Err(FrameError::corrupt(format!(
                "field `cache` is neither null nor an object, got {}",
                other.kind()
            )))
        }
    };
    Ok(StudyStats {
        jobs: usize_field(obj, "jobs")?,
        targets: usize_field(obj, "targets")?,
        traffic_patterns: usize_field(obj, "traffic")?,
        arrays: usize_field(obj, "arrays")?,
        evaluations: usize_field(obj, "evaluations")?,
        skipped: usize_field(obj, "skipped")?,
        cache,
    })
}

impl OwnedStudyEvent {
    /// Decodes an event object — either a bare `JsonlSink` line or the
    /// event portion of a wire frame (header fields are ignored here).
    ///
    /// # Errors
    ///
    /// [`FrameError::Corrupt`] for a missing/unknown `event` tag or a
    /// malformed payload.
    pub fn from_value(value: &Value) -> Result<Self, FrameError> {
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("event line is not a JSON object"))?;
        let kind = str_field(obj, "event")?;
        match kind {
            "study_started" => Ok(Self::StudyStarted {
                name: str_field(obj, "name")?.to_owned(),
                cells: usize_field(obj, "cells")?,
                jobs: usize_field(obj, "jobs")?,
                targets: usize_field(obj, "targets")?,
                traffic: usize_field(obj, "traffic")?,
            }),
            "array_characterized" => Ok(Self::ArrayCharacterized {
                index: usize_field(obj, "index")?,
                array: serde_json::from_value(field(obj, "array")?)
                    .map_err(|e| FrameError::corrupt(format!("bad array payload: {e}")))?,
            }),
            "design_skipped" => Ok(Self::DesignSkipped {
                cell: str_field(obj, "cell")?.to_owned(),
                target: target_field(obj, "target")?,
                reason: str_field(obj, "reason")?.to_owned(),
            }),
            "evaluation_produced" => Ok(Self::EvaluationProduced {
                index: usize_field(obj, "index")?,
                evaluation: serde_json::from_value(field(obj, "evaluation")?)
                    .map_err(|e| FrameError::corrupt(format!("bad evaluation payload: {e}")))?,
            }),
            "target_winner_selected" => Ok(Self::TargetWinnerSelected {
                target: target_field(obj, "target")?,
                cell: str_field(obj, "cell")?.to_owned(),
                traffic: str_field(obj, "traffic")?.to_owned(),
                total_power_w: float_field(obj, "total_power_w")?,
            }),
            "study_finished" => Ok(Self::StudyFinished {
                name: str_field(obj, "name")?.to_owned(),
                stats: finished_stats(obj)?,
            }),
            "fault_trial_produced" => Ok(Self::FaultTrialProduced {
                index: usize_field(obj, "index")?,
                trial: FaultTrial {
                    model_index: usize_field(obj, "model_index")?,
                    trial: u32_field(obj, "trial")?,
                    cell: str_field(obj, "cell")?.to_owned(),
                    bits_per_cell: serde_json::from_value(field(obj, "bits_per_cell")?)
                        .map_err(|e| FrameError::corrupt(format!("bad bits_per_cell: {e}")))?,
                    temperature_c: float_field(obj, "temperature_c")?,
                    bit_error_rate: float_field(obj, "bit_error_rate")?,
                    injection_seed: uint_field(obj, "injection_seed")?,
                    bits_total: uint_field(obj, "bits_total")?,
                    bits_flipped: uint_field(obj, "bits_flipped")?,
                    accuracy: float_field(obj, "accuracy")?,
                },
            }),
            "accuracy_degraded" => Ok(Self::AccuracyDegraded {
                index: usize_field(obj, "index")?,
                report: FaultModelReport {
                    model_index: usize_field(obj, "model_index")?,
                    cell: str_field(obj, "cell")?.to_owned(),
                    bits_per_cell: serde_json::from_value(field(obj, "bits_per_cell")?)
                        .map_err(|e| FrameError::corrupt(format!("bad bits_per_cell: {e}")))?,
                    temperature_c: float_field(obj, "temperature_c")?,
                    report: AccuracyReport {
                        baseline: float_field(obj, "baseline")?,
                        mean: float_field(obj, "mean")?,
                        worst: float_field(obj, "worst")?,
                        bit_error_rate: float_field(obj, "bit_error_rate")?,
                        trials: u32_field(obj, "trials")?,
                    },
                    acceptable: bool_field(obj, "acceptable")?,
                },
            }),
            "fault_study_finished" => Ok(Self::FaultStudyFinished {
                name: str_field(obj, "name")?.to_owned(),
                stats: FaultStudyStats {
                    base: finished_stats(obj)?,
                    models: usize_field(obj, "models")?,
                    trials: usize_field(obj, "trials")?,
                    degraded: usize_field(obj, "degraded")?,
                },
            }),
            other => Err(FrameError::corrupt(format!("unknown event tag `{other}`"))),
        }
    }

    /// The borrowed view of this event, or `None` for
    /// `target_winner_selected` (whose full evaluation is not on the wire —
    /// use [`EventReplayer`] to re-link it against the streamed
    /// evaluations).
    pub fn as_event(&self) -> Option<StudyEvent<'_>> {
        match self {
            Self::StudyStarted {
                name,
                cells,
                jobs,
                targets,
                traffic,
            } => Some(StudyEvent::StudyStarted {
                name,
                cells: *cells,
                jobs: *jobs,
                targets: *targets,
                traffic: *traffic,
            }),
            Self::ArrayCharacterized { index, array } => Some(StudyEvent::ArrayCharacterized {
                index: *index,
                array,
            }),
            Self::DesignSkipped {
                cell,
                target,
                reason,
            } => Some(StudyEvent::DesignSkipped {
                cell,
                target: *target,
                reason,
            }),
            Self::EvaluationProduced { index, evaluation } => {
                Some(StudyEvent::EvaluationProduced {
                    index: *index,
                    evaluation,
                })
            }
            Self::TargetWinnerSelected { .. } => None,
            Self::StudyFinished { name, stats } => Some(StudyEvent::StudyFinished { name, stats }),
            Self::FaultTrialProduced { index, trial } => Some(StudyEvent::FaultTrialProduced {
                index: *index,
                trial,
            }),
            Self::AccuracyDegraded { index, report } => Some(StudyEvent::AccuracyDegraded {
                index: *index,
                report,
            }),
            Self::FaultStudyFinished { name, stats } => {
                Some(StudyEvent::FaultStudyFinished { name, stats })
            }
        }
    }

    /// Wire tag of the event (the `"event"` field of its JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::StudyStarted { .. } => "study_started",
            Self::ArrayCharacterized { .. } => "array_characterized",
            Self::DesignSkipped { .. } => "design_skipped",
            Self::EvaluationProduced { .. } => "evaluation_produced",
            Self::TargetWinnerSelected { .. } => "target_winner_selected",
            Self::StudyFinished { .. } => "study_finished",
            Self::FaultTrialProduced { .. } => "fault_trial_produced",
            Self::AccuracyDegraded { .. } => "accuracy_degraded",
            Self::FaultStudyFinished { .. } => "fault_study_finished",
        }
    }

    /// The event's JSON object — byte-compatible with the borrowed
    /// [`StudyEvent`]'s serialization (parse → re-serialize is the
    /// identity on wire lines; asserted in `tests/wire_roundtrip.rs`).
    pub fn to_value(&self) -> Value {
        match self.as_event() {
            Some(event) => event.to_value(),
            None => {
                let Self::TargetWinnerSelected {
                    target,
                    cell,
                    traffic,
                    total_power_w,
                } = self
                else {
                    unreachable!("only winner events have no borrowed view")
                };
                // Mirrors the `TargetWinnerSelected` arm of the borrowed
                // event's Serialize impl field-for-field.
                Value::Object(vec![
                    ("event".to_owned(), Value::Str(self.kind().to_owned())),
                    ("target".to_owned(), Value::Str(target.label().to_owned())),
                    ("cell".to_owned(), Value::Str(cell.clone())),
                    ("traffic".to_owned(), Value::Str(traffic.clone())),
                    ("total_power_w".to_owned(), Value::Float(*total_power_w)),
                ])
            }
        }
    }
}

// ----------------------------------------------------------------- frames

/// One parsed wire line: the protocol header plus the event.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// Protocol version the line declared (within
    /// [`WIRE_MIN_VERSION`]`..=`[`WIRE_VERSION`] after a successful
    /// parse; re-encoding always stamps the current [`WIRE_VERSION`]).
    pub version: u64,
    /// Study name from the header.
    pub study: String,
    /// Slot sequence number: the event's position in the deterministic
    /// slot-order stream.
    pub seq: u64,
    /// The event payload.
    pub event: OwnedStudyEvent,
}

impl WireFrame {
    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// [`FrameError::Version`] when `v` is outside
    /// [`WIRE_MIN_VERSION`]`..=`[`WIRE_VERSION`];
    /// [`FrameError::Corrupt`] for anything else wrong with the line.
    pub fn parse(line: &str) -> Result<Self, FrameError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| FrameError::corrupt(format!("not valid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("wire line is not a JSON object"))?;
        let version = uint_field(obj, "v")?;
        if !(WIRE_MIN_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(FrameError::Version { found: version });
        }
        Ok(Self {
            version,
            study: str_field(obj, "study")?.to_owned(),
            seq: uint_field(obj, "seq")?,
            event: OwnedStudyEvent::from_value(&value)?,
        })
    }

    /// The frame as a JSON value: header fields, then the event object's
    /// fields — exactly what [`WireSink`] writes.
    pub fn to_value(&self) -> Value {
        frame_value(&self.study, self.seq, self.event.to_value())
    }

    /// The frame as one JSONL line (no trailing newline). Parse → re-encode
    /// is the identity on lines produced by [`WireSink`], so a coordinator
    /// can re-emit merged frames into a capture file byte-faithfully.
    /// (Version-1 lines re-encode stamped with the current version — the
    /// payload bytes are unchanged, only the header advances.)
    pub fn to_line(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("wire frames always serialize")
    }
}

/// Prepends the wire header to an event body object.
fn frame_value(study: &str, seq: u64, event_body: Value) -> Value {
    let mut fields = vec![
        ("v".to_owned(), Value::Uint(WIRE_VERSION)),
        ("study".to_owned(), Value::Str(study.to_owned())),
        ("seq".to_owned(), Value::Uint(seq)),
    ];
    match event_body {
        Value::Object(body) => fields.extend(body),
        other => fields.push(("event".to_owned(), other)),
    }
    Value::Object(fields)
}

// --------------------------------------------------------- service frames

/// Encodes a [`CacheStats`] counter block as the wire's cache object (the
/// same six counters the `study_finished` event carries, plus the nonzero
/// per-class `l2_reject_*` breakdown; the derived `hit_rate`/`prune_rate`
/// fields are not re-encoded here — they are a display convenience of the
/// event stream, not protocol state).
fn cache_value(stats: &CacheStats) -> Value {
    let mut fields = vec![
        ("hits".to_owned(), Value::Uint(stats.hits)),
        ("misses".to_owned(), Value::Uint(stats.misses)),
        ("pruned".to_owned(), Value::Uint(stats.pruned)),
        ("l2_hits".to_owned(), Value::Uint(stats.l2_hits)),
        ("l2_misses".to_owned(), Value::Uint(stats.l2_misses)),
        ("l2_rejects".to_owned(), Value::Uint(stats.l2_rejects)),
    ];
    push_reject_classes(&mut fields, &stats.l2_reject_classes);
    Value::Object(fields)
}

/// Decodes a wire cache object (missing counters default to zero, exactly
/// like the `study_finished` decoder — older writers never observed them).
fn cache_from(value: &Value) -> Result<CacheStats, FrameError> {
    let obj = value
        .as_object()
        .ok_or_else(|| FrameError::corrupt("cache block is not a JSON object"))?;
    Ok(CacheStats {
        hits: uint_field_or(obj, "hits", 0)?,
        misses: uint_field_or(obj, "misses", 0)?,
        pruned: uint_field_or(obj, "pruned", 0)?,
        l2_hits: uint_field_or(obj, "l2_hits", 0)?,
        l2_misses: uint_field_or(obj, "l2_misses", 0)?,
        l2_rejects: uint_field_or(obj, "l2_rejects", 0)?,
        l2_reject_classes: reject_classes_from(obj)?,
    })
}

/// Checks the `v` header of a service frame: requests/responses exist only
/// since [`WIRE_SERVICE_MIN_VERSION`].
fn service_version(obj: &[(String, Value)]) -> Result<u64, FrameError> {
    let version = uint_field(obj, "v")?;
    if !(WIRE_SERVICE_MIN_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(FrameError::Version { found: version });
    }
    Ok(version)
}

/// A client → server request line of the campaign-service protocol
/// (protocol version 3; see `docs/PROTOCOL.md` § Service frames).
///
/// Requests are distinguished from event frames by the `"request"` field:
/// `{"v":3,"request":"submit","priority":0,"config":{…}}`. One request per
/// line; the server answers every request with at least one
/// [`ResponseFrame`] line.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFrame {
    /// Submit a campaign config for execution. The server admits it into
    /// the priority queue (higher `priority` runs first; ties in
    /// submission order) and then streams the session's event frames on
    /// the same connection, terminated by [`ResponseFrame::Done`].
    Submit {
        /// Scheduling priority, `0..=255`; higher is sooner.
        priority: u8,
        /// The campaign config as a raw JSON object — exactly what a
        /// config file contains. The server runs it through the one
        /// validated parse path
        /// ([`CampaignConfig::from_json`](crate::config::CampaignConfig::from_json)),
        /// so a malformed config is rejected with
        /// [`ResponseFrame::Error`] naming the offending section.
        config: Value,
    },
    /// Ask for the service's session table and cumulative cache counters.
    Status,
    /// Cancel a queued or running session.
    Cancel {
        /// The session to cancel.
        session: u64,
    },
    /// Attach to a session's event channel: the server replays every frame
    /// the session has emitted so far, then follows live until the
    /// session's terminal [`ResponseFrame::Done`].
    Events {
        /// The session to attach to.
        session: u64,
    },
    /// Gracefully drain the service: stop admitting, finish every queued
    /// and running session, flush the store, then exit.
    Shutdown,
}

impl RequestFrame {
    /// Wire tag of the request (its `"request"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Submit { .. } => "submit",
            Self::Status => "status",
            Self::Cancel { .. } => "cancel",
            Self::Events { .. } => "events",
            Self::Shutdown => "shutdown",
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`FrameError::Version`] when `v` is outside
    /// [`WIRE_SERVICE_MIN_VERSION`]`..=`[`WIRE_VERSION`];
    /// [`FrameError::Corrupt`] for anything else wrong with the line.
    pub fn parse(line: &str) -> Result<Self, FrameError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| FrameError::corrupt(format!("not valid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("request line is not a JSON object"))?;
        service_version(obj)?;
        match str_field(obj, "request")? {
            "submit" => Ok(Self::Submit {
                priority: u8::try_from(uint_field_or(obj, "priority", 0)?)
                    .map_err(|_| FrameError::corrupt("field `priority` out of range (0..=255)"))?,
                config: field(obj, "config")?.clone(),
            }),
            "status" => Ok(Self::Status),
            "cancel" => Ok(Self::Cancel {
                session: uint_field(obj, "session")?,
            }),
            "events" => Ok(Self::Events {
                session: uint_field(obj, "session")?,
            }),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(FrameError::corrupt(format!(
                "unknown request tag `{other}`"
            ))),
        }
    }

    /// The request as one JSONL line (no trailing newline); parse →
    /// re-encode is the identity.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_owned(), Value::Uint(WIRE_VERSION)),
            ("request".to_owned(), Value::Str(self.kind().to_owned())),
        ];
        match self {
            Self::Submit { priority, config } => {
                fields.push(("priority".to_owned(), Value::Uint(u64::from(*priority))));
                fields.push(("config".to_owned(), config.clone()));
            }
            Self::Cancel { session } | Self::Events { session } => {
                fields.push(("session".to_owned(), Value::Uint(*session)));
            }
            Self::Status | Self::Shutdown => {}
        }
        serde_json::to_string(&Value::Object(fields)).expect("request frames always serialize")
    }
}

/// One session row of a [`ResponseFrame::Status`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBrief {
    /// Session id.
    pub session: u64,
    /// Study (or campaign) name the session runs.
    pub study: String,
    /// Lifecycle state: `queued`, `running`, `finished`, `failed`, or
    /// `cancelled`.
    pub state: String,
    /// Admission priority the session was submitted with.
    pub priority: u8,
    /// Event frames the session has emitted so far.
    pub events: u64,
}

impl SessionBrief {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("session".to_owned(), Value::Uint(self.session)),
            ("study".to_owned(), Value::Str(self.study.clone())),
            ("state".to_owned(), Value::Str(self.state.clone())),
            ("priority".to_owned(), Value::Uint(u64::from(self.priority))),
            ("events".to_owned(), Value::Uint(self.events)),
        ])
    }

    fn from_value(value: &Value) -> Result<Self, FrameError> {
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("session row is not a JSON object"))?;
        Ok(Self {
            session: uint_field(obj, "session")?,
            study: str_field(obj, "study")?.to_owned(),
            state: str_field(obj, "state")?.to_owned(),
            priority: u8::try_from(uint_field(obj, "priority")?)
                .map_err(|_| FrameError::corrupt("field `priority` out of range (0..=255)"))?,
            events: uint_field(obj, "events")?,
        })
    }
}

/// A server → client response line of the campaign-service protocol
/// (protocol version 3; see `docs/PROTOCOL.md` § Service frames).
///
/// Responses are distinguished from event frames by the `"response"`
/// field. On a `submit` or `events` connection the response lines bracket
/// the raw event frames: `submitted`, then the session's wire frames
/// verbatim, then `done`.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// A `submit` was admitted; the session's event frames follow on this
    /// connection.
    Submitted {
        /// The session id assigned.
        session: u64,
        /// The campaign name the config resolved to.
        study: String,
        /// Sessions queued ahead of this one at admission time.
        queue_depth: u64,
    },
    /// Answer to a `status` request.
    Status {
        /// `true` once a shutdown was requested (no further admissions).
        draining: bool,
        /// Sessions currently queued (admitted, not yet running).
        queue_depth: u64,
        /// Admission-queue capacity (`queue_depth == capacity` rejects).
        capacity: u64,
        /// Every session the service still remembers, in submission order.
        sessions: Vec<SessionBrief>,
        /// Cumulative shared-cache counters since the service started.
        cache: CacheStats,
    },
    /// Answer to a `cancel` request.
    Cancelled {
        /// The cancelled session.
        session: u64,
        /// `true` when the session was still queued or running (the cancel
        /// did something); `false` when it had already reached a terminal
        /// state.
        active: bool,
    },
    /// Terminal line of a session's event channel.
    Done {
        /// The session that ended.
        session: u64,
        /// `finished`, `failed`, or `cancelled`.
        outcome: String,
        /// The failure message, for `failed` outcomes.
        error: Option<String>,
        /// The shared-cache counter delta accrued while this session ran —
        /// the tenant's own view of the warm cache (observational, like
        /// every cache counter on the wire).
        cache: Option<CacheStats>,
    },
    /// A `shutdown` was accepted; the service drains and exits.
    Draining,
    /// The request could not be served (malformed config, unknown session,
    /// queue full, draining service, …).
    Error {
        /// Human-readable reason, safe to print verbatim.
        reason: String,
    },
}

impl ResponseFrame {
    /// Wire tag of the response (its `"response"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Submitted { .. } => "submitted",
            Self::Status { .. } => "status",
            Self::Cancelled { .. } => "cancelled",
            Self::Done { .. } => "done",
            Self::Draining => "draining",
            Self::Error { .. } => "error",
        }
    }

    /// `true` when `line` looks like a service response (a JSON object
    /// carrying a `"response"` field) rather than an event frame — the
    /// cheap pre-test a client uses to split a session channel into event
    /// frames and bracketing responses without parsing twice.
    pub fn is_response_line(line: &str) -> bool {
        matches!(
            serde_json::from_str::<Value>(line),
            Ok(Value::Object(obj)) if obj.iter().any(|(k, _)| k == "response")
        )
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`FrameError::Version`] when `v` is outside
    /// [`WIRE_SERVICE_MIN_VERSION`]`..=`[`WIRE_VERSION`];
    /// [`FrameError::Corrupt`] for anything else wrong with the line.
    pub fn parse(line: &str) -> Result<Self, FrameError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| FrameError::corrupt(format!("not valid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("response line is not a JSON object"))?;
        service_version(obj)?;
        match str_field(obj, "response")? {
            "submitted" => Ok(Self::Submitted {
                session: uint_field(obj, "session")?,
                study: str_field(obj, "study")?.to_owned(),
                queue_depth: uint_field(obj, "queue_depth")?,
            }),
            "status" => {
                let rows = match field(obj, "sessions")? {
                    Value::Array(rows) => rows,
                    other => {
                        return Err(FrameError::corrupt(format!(
                            "field `sessions` is not an array, got {}",
                            other.kind()
                        )))
                    }
                };
                Ok(Self::Status {
                    draining: bool_field(obj, "draining")?,
                    queue_depth: uint_field(obj, "queue_depth")?,
                    capacity: uint_field(obj, "capacity")?,
                    sessions: rows
                        .iter()
                        .map(SessionBrief::from_value)
                        .collect::<Result<_, _>>()?,
                    cache: cache_from(field(obj, "cache")?)?,
                })
            }
            "cancelled" => Ok(Self::Cancelled {
                session: uint_field(obj, "session")?,
                active: bool_field(obj, "active")?,
            }),
            "done" => Ok(Self::Done {
                session: uint_field(obj, "session")?,
                outcome: str_field(obj, "outcome")?.to_owned(),
                error: match obj.iter().find(|(k, _)| k == "error") {
                    None | Some((_, Value::Null)) => None,
                    Some((_, Value::Str(s))) => Some(s.clone()),
                    Some((_, other)) => {
                        return Err(FrameError::corrupt(format!(
                            "field `error` is neither null nor a string, got {}",
                            other.kind()
                        )))
                    }
                },
                cache: match obj.iter().find(|(k, _)| k == "cache") {
                    None | Some((_, Value::Null)) => None,
                    Some((_, value)) => Some(cache_from(value)?),
                },
            }),
            "draining" => Ok(Self::Draining),
            "error" => Ok(Self::Error {
                reason: str_field(obj, "reason")?.to_owned(),
            }),
            other => Err(FrameError::corrupt(format!(
                "unknown response tag `{other}`"
            ))),
        }
    }

    /// The response as one JSONL line (no trailing newline); parse →
    /// re-encode is the identity.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_owned(), Value::Uint(WIRE_VERSION)),
            ("response".to_owned(), Value::Str(self.kind().to_owned())),
        ];
        match self {
            Self::Submitted {
                session,
                study,
                queue_depth,
            } => {
                fields.push(("session".to_owned(), Value::Uint(*session)));
                fields.push(("study".to_owned(), Value::Str(study.clone())));
                fields.push(("queue_depth".to_owned(), Value::Uint(*queue_depth)));
            }
            Self::Status {
                draining,
                queue_depth,
                capacity,
                sessions,
                cache,
            } => {
                fields.push(("draining".to_owned(), Value::Bool(*draining)));
                fields.push(("queue_depth".to_owned(), Value::Uint(*queue_depth)));
                fields.push(("capacity".to_owned(), Value::Uint(*capacity)));
                fields.push((
                    "sessions".to_owned(),
                    Value::Array(sessions.iter().map(SessionBrief::to_value).collect()),
                ));
                fields.push(("cache".to_owned(), cache_value(cache)));
            }
            Self::Cancelled { session, active } => {
                fields.push(("session".to_owned(), Value::Uint(*session)));
                fields.push(("active".to_owned(), Value::Bool(*active)));
            }
            Self::Done {
                session,
                outcome,
                error,
                cache,
            } => {
                fields.push(("session".to_owned(), Value::Uint(*session)));
                fields.push(("outcome".to_owned(), Value::Str(outcome.clone())));
                if let Some(error) = error {
                    fields.push(("error".to_owned(), Value::Str(error.clone())));
                }
                if let Some(cache) = cache {
                    fields.push(("cache".to_owned(), cache_value(cache)));
                }
            }
            Self::Draining => {}
            Self::Error { reason } => {
                fields.push(("reason".to_owned(), Value::Str(reason.clone())));
            }
        }
        serde_json::to_string(&Value::Object(fields)).expect("response frames always serialize")
    }
}

// --------------------------------------------------------- control frames

/// Checks the `v` header of a worker-supervision control frame: worker and
/// lease lines exist only since [`WIRE_WORKER_MIN_VERSION`].
fn worker_version(obj: &[(String, Value)]) -> Result<u64, FrameError> {
    let version = uint_field(obj, "v")?;
    if !(WIRE_WORKER_MIN_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(FrameError::Version { found: version });
    }
    Ok(version)
}

/// `true` when `line` looks like a frame of the given control family (a
/// JSON object whose `key` field is a *string tag*) — the cheap pre-test
/// a reader uses to split a mixed channel without parsing twice. The
/// string-value requirement matters: a `{"worker":"drained","lease":3}`
/// line carries a numeric `lease` field without being a lease frame.
fn has_tag(line: &str, key: &str) -> bool {
    matches!(
        serde_json::from_str::<Value>(line),
        Ok(Value::Object(obj)) if obj.iter().any(|(k, v)| k == key && matches!(v, Value::Str(_)))
    )
}

/// A worker → coordinator control line of the lease protocol (protocol
/// version 4; see `docs/PROTOCOL.md` § Worker frames).
///
/// Worker lines are distinguished from event frames by the `"worker"`
/// field: `{"v":4,"worker":"heartbeat","seen":120,"sent":41}`. A
/// socket-connected worker interleaves them with the event frames of its
/// active leases on the same connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFrame {
    /// First line of every connection: the worker introduces itself and
    /// names the study it is computing, so the coordinator can bind the
    /// connection to a supervision slot before any lease is granted.
    Hello {
        /// Worker name (stable across reconnects of the same worker).
        name: String,
        /// Study the worker's config resolved to.
        study: String,
        /// `true` when this connection replaces an earlier one from the
        /// same worker (a reconnect after a dropped socket). The
        /// coordinator's merger absorbs any slots the worker re-sends.
        resume: bool,
    },
    /// Periodic liveness beacon, sent from a dedicated timer thread so a
    /// long-running characterization never reads as a stall — only a
    /// stopped *process* does.
    Heartbeat {
        /// Events the worker's engine has produced so far (the worker's
        /// own slot cursor; drives the coordinator's throughput EWMA).
        seen: u64,
        /// Event frames actually emitted under leases so far.
        sent: u64,
    },
    /// Every slot of the named lease that this worker owns has been
    /// emitted on this connection.
    Drained {
        /// The lease id from the coordinator's [`LeaseFrame::Grant`].
        lease: u64,
    },
    /// The worker's engine has finished the whole study: `seen` is the
    /// total stream length, after which no lease can ever block.
    Done {
        /// Total events in the study's deterministic stream.
        seen: u64,
        /// Event frames emitted under leases over the connection lifetime.
        sent: u64,
    },
}

impl WorkerFrame {
    /// Wire tag of the frame (its `"worker"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Hello { .. } => "hello",
            Self::Heartbeat { .. } => "heartbeat",
            Self::Drained { .. } => "drained",
            Self::Done { .. } => "done",
        }
    }

    /// `true` when `line` looks like a worker control line (a JSON object
    /// carrying a `"worker"` field) rather than an event frame.
    pub fn is_worker_line(line: &str) -> bool {
        has_tag(line, "worker")
    }

    /// Parses one worker control line.
    ///
    /// # Errors
    ///
    /// [`FrameError::Version`] when `v` is outside
    /// [`WIRE_WORKER_MIN_VERSION`]`..=`[`WIRE_VERSION`];
    /// [`FrameError::Corrupt`] for anything else wrong with the line.
    pub fn parse(line: &str) -> Result<Self, FrameError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| FrameError::corrupt(format!("not valid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("worker line is not a JSON object"))?;
        worker_version(obj)?;
        match str_field(obj, "worker")? {
            "hello" => Ok(Self::Hello {
                name: str_field(obj, "name")?.to_owned(),
                study: str_field(obj, "study")?.to_owned(),
                resume: bool_field(obj, "resume")?,
            }),
            "heartbeat" => Ok(Self::Heartbeat {
                seen: uint_field(obj, "seen")?,
                sent: uint_field(obj, "sent")?,
            }),
            "drained" => Ok(Self::Drained {
                lease: uint_field(obj, "lease")?,
            }),
            "done" => Ok(Self::Done {
                seen: uint_field(obj, "seen")?,
                sent: uint_field(obj, "sent")?,
            }),
            other => Err(FrameError::corrupt(format!("unknown worker tag `{other}`"))),
        }
    }

    /// The frame as one JSONL line (no trailing newline); parse →
    /// re-encode is the identity.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_owned(), Value::Uint(WIRE_VERSION)),
            ("worker".to_owned(), Value::Str(self.kind().to_owned())),
        ];
        match self {
            Self::Hello {
                name,
                study,
                resume,
            } => {
                fields.push(("name".to_owned(), Value::Str(name.clone())));
                fields.push(("study".to_owned(), Value::Str(study.clone())));
                fields.push(("resume".to_owned(), Value::Bool(*resume)));
            }
            Self::Heartbeat { seen, sent } | Self::Done { seen, sent } => {
                fields.push(("seen".to_owned(), Value::Uint(*seen)));
                fields.push(("sent".to_owned(), Value::Uint(*sent)));
            }
            Self::Drained { lease } => {
                fields.push(("lease".to_owned(), Value::Uint(*lease)));
            }
        }
        serde_json::to_string(&Value::Object(fields)).expect("worker frames always serialize")
    }
}

/// A coordinator → worker control line of the lease protocol (protocol
/// version 4; see `docs/PROTOCOL.md` § Lease frames).
///
/// Lease lines are distinguished by the `"lease"` field:
/// `{"v":4,"lease":"grant","id":3,"start":64,"end":96}`. They are the only
/// frames a coordinator sends to a worker; the worker emits each granted
/// range's events in slot order and answers with
/// [`WorkerFrame::Drained`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseFrame {
    /// Grant the half-open slot range `start..end` to this worker. Ranges
    /// may overlap ranges granted to other workers (re-leases after a
    /// stall do, deliberately); the coordinator's merger dedups.
    Grant {
        /// Lease id, unique per campaign run.
        id: u64,
        /// First slot of the range.
        start: u64,
        /// One past the last slot of the range.
        end: u64,
    },
    /// Withdraw a previously granted lease: the worker stops emitting its
    /// slots as soon as it observes the line. Slots already in flight are
    /// harmless (the merger dedups them against the re-lease).
    Revoke {
        /// The lease to withdraw.
        id: u64,
    },
    /// The campaign is complete (or this worker is dismissed): finish any
    /// in-flight line and close the connection.
    Shutdown,
}

impl LeaseFrame {
    /// Wire tag of the frame (its `"lease"` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Grant { .. } => "grant",
            Self::Revoke { .. } => "revoke",
            Self::Shutdown => "shutdown",
        }
    }

    /// `true` when `line` looks like a lease control line (a JSON object
    /// carrying a `"lease"` field).
    pub fn is_lease_line(line: &str) -> bool {
        has_tag(line, "lease")
    }

    /// Parses one lease control line.
    ///
    /// # Errors
    ///
    /// [`FrameError::Version`] when `v` is outside
    /// [`WIRE_WORKER_MIN_VERSION`]`..=`[`WIRE_VERSION`];
    /// [`FrameError::Corrupt`] for anything else wrong with the line
    /// (including a `grant` whose range is empty or inverted).
    pub fn parse(line: &str) -> Result<Self, FrameError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| FrameError::corrupt(format!("not valid JSON: {e}")))?;
        let obj = value
            .as_object()
            .ok_or_else(|| FrameError::corrupt("lease line is not a JSON object"))?;
        worker_version(obj)?;
        match str_field(obj, "lease")? {
            "grant" => {
                let start = uint_field(obj, "start")?;
                let end = uint_field(obj, "end")?;
                if end <= start {
                    return Err(FrameError::corrupt(format!(
                        "lease grant range {start}..{end} is empty"
                    )));
                }
                Ok(Self::Grant {
                    id: uint_field(obj, "id")?,
                    start,
                    end,
                })
            }
            "revoke" => Ok(Self::Revoke {
                id: uint_field(obj, "id")?,
            }),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(FrameError::corrupt(format!("unknown lease tag `{other}`"))),
        }
    }

    /// The frame as one JSONL line (no trailing newline); parse →
    /// re-encode is the identity.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("v".to_owned(), Value::Uint(WIRE_VERSION)),
            ("lease".to_owned(), Value::Str(self.kind().to_owned())),
        ];
        match self {
            Self::Grant { id, start, end } => {
                fields.push(("id".to_owned(), Value::Uint(*id)));
                fields.push(("start".to_owned(), Value::Uint(*start)));
                fields.push(("end".to_owned(), Value::Uint(*end)));
            }
            Self::Revoke { id } => {
                fields.push(("id".to_owned(), Value::Uint(*id)));
            }
            Self::Shutdown => {}
        }
        serde_json::to_string(&Value::Object(fields)).expect("lease frames always serialize")
    }
}

// ----------------------------------------------------------------- shards

/// A residue-class shard of the slot space: shard `i/n` owns every slot
/// with `seq % n == i`. Round-robin (rather than contiguous ranges) means
/// no worker needs to know the stream length in advance, and a merging
/// coordinator always knows which shard its next slot must come from —
/// `nvmx-coordinator` exploits that to read only the owning shard's
/// (bounded) queue, so shards racing ahead park in their own stdout pipes
/// instead of the coordinator's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index, `< count`.
    pub index: u64,
    /// Total shard count, `>= 1`.
    pub count: u64,
}

impl Default for Shard {
    fn default() -> Self {
        Self::WHOLE
    }
}

impl Shard {
    /// The unsharded stream: one shard owning every slot.
    pub const WHOLE: Self = Self { index: 0, count: 1 };

    /// Shard `index` of `count`.
    ///
    /// # Errors
    ///
    /// When `count` is zero or `index >= count`.
    pub fn of(index: u64, count: u64) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be >= 1".to_owned());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `"I/N"` (e.g. `"0/2"`).
    ///
    /// # Errors
    ///
    /// A description of what was malformed.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (index, count) = spec
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{spec}` is not of the form I/N"))?;
        let index: u64 = index
            .trim()
            .parse()
            .map_err(|_| format!("shard index `{index}` is not an unsigned integer"))?;
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("shard count `{count}` is not an unsigned integer"))?;
        Self::of(index, count)
    }

    /// Whether this shard owns slot `seq`.
    pub fn owns(&self, seq: u64) -> bool {
        seq % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

// ------------------------------------------------------------------- sink

/// A [`ResultSink`] that serializes every event as a versioned wire line.
///
/// The sink numbers *all* events (so `seq` is the global slot coordinate)
/// but writes only the lines its [`Shard`] owns. Each written line is
/// flushed immediately: a downstream coordinator sees events as they
/// happen, and a killed worker leaves a clean prefix of its residue class
/// rather than a torn line. The study name is captured from the
/// `study_started` event, which the engine guarantees comes first.
#[derive(Debug)]
pub struct WireSink<W: Write> {
    out: W,
    shard: Shard,
    study: String,
    seq: u64,
    written: u64,
}

impl<W: Write> WireSink<W> {
    /// An unsharded sink: every event goes to `out`.
    pub fn new(out: W) -> Self {
        Self::sharded(out, Shard::WHOLE)
    }

    /// A sink emitting only the slots `shard` owns.
    pub fn sharded(out: W, shard: Shard) -> Self {
        Self {
            out,
            shard,
            study: String::new(),
            seq: 0,
            written: 0,
        }
    }

    /// Lines actually written (this shard's slots only).
    pub fn frames_written(&self) -> u64 {
        self.written
    }

    /// Events observed (all slots, whether or not this shard wrote them).
    pub fn events_seen(&self) -> u64 {
        self.seq
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> ResultSink for WireSink<W> {
    fn on_event(&mut self, event: &StudyEvent<'_>) -> std::io::Result<()> {
        if let StudyEvent::StudyStarted { name, .. } = event {
            self.study = (*name).to_owned();
        }
        let seq = self.seq;
        self.seq += 1;
        if !self.shard.owns(seq) {
            return Ok(());
        }
        let line = serde_json::to_string(&frame_value(&self.study, seq, event.to_value()))
            .map_err(std::io::Error::other)?;
        writeln!(self.out, "{line}")?;
        self.out.flush()?;
        self.written += 1;
        Ok(())
    }
}

// ----------------------------------------------------------------- merger

/// Merges out-of-order slot arrivals back into a strict `0, 1, 2, …`
/// delivery order, deduplicating repeats.
///
/// Generic over the payload so the coordinator can carry `(WireFrame,
/// raw line)` pairs and tests can merge plain integers. Duplicates are
/// *dropped, not rejected*: a re-spawned worker replays its entire residue
/// class, and the merger absorbing already-delivered slots is exactly what
/// makes resume idempotent. (The strict single-stream readers — [`replay`]
/// — do reject duplicates; a captured file has no business repeating
/// itself.)
#[derive(Debug)]
pub struct SlotMerger<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
    duplicates: u64,
}

impl<T> Default for SlotMerger<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotMerger<T> {
    /// A merger expecting slot 0 first.
    pub fn new() -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
            duplicates: 0,
        }
    }

    /// Offers one arrival. Delivers it (and any now-contiguous buffered
    /// successors) to `deliver` in slot order; buffers it if it is early;
    /// drops it if it was already delivered or buffered.
    ///
    /// # Errors
    ///
    /// Propagates the first `deliver` error; the merger's cursor stays
    /// consistent (the failing slot counts as delivered).
    pub fn offer<E>(
        &mut self,
        seq: u64,
        item: T,
        deliver: &mut dyn FnMut(u64, T) -> Result<(), E>,
    ) -> Result<(), E> {
        if seq < self.next || self.pending.contains_key(&seq) {
            self.duplicates += 1;
            return Ok(());
        }
        if seq != self.next {
            self.pending.insert(seq, item);
            return Ok(());
        }
        self.next += 1;
        deliver(seq, item)?;
        while let Some(item) = self.pending.remove(&self.next) {
            let seq = self.next;
            self.next += 1;
            deliver(seq, item)?;
        }
        Ok(())
    }

    /// The next slot the merger will deliver.
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// Early arrivals currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Duplicate arrivals dropped so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

// ----------------------------------------------------------------- replay

/// Marker payload inside the `io::Error` [`EventReplayer::apply`] returns
/// when a winner line matches no streamed evaluation — a *typed* marker,
/// so strict readers can distinguish it from any `InvalidData` error a
/// caller's sink happens to raise while handling the same event.
#[derive(Debug)]
struct WinnerLookupFailed {
    cell: String,
}

impl std::fmt::Display for WinnerLookupFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "winner `{}` matches no streamed evaluation", self.cell)
    }
}

impl std::error::Error for WinnerLookupFailed {}

/// Feeds decoded wire events into a [`ResultSink`] and a
/// [`StudyResultBuilder`], re-linking `target_winner_selected` lines to the
/// full evaluations that streamed earlier so downstream sinks observe the
/// exact event sequence the original engine emitted.
#[derive(Debug, Default)]
pub struct EventReplayer {
    builder: StudyResultBuilder,
}

impl EventReplayer {
    /// A fresh replayer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one decoded event: forwards the borrowed view to `sink` and
    /// records it in the internal builder.
    ///
    /// # Errors
    ///
    /// Sink failures propagate unchanged; a winner that matches no
    /// streamed evaluation is reported as an
    /// [`std::io::ErrorKind::InvalidData`] error carrying a typed marker
    /// (strict readers surface it as [`WireError::UnknownWinner`] without
    /// ever confusing it with a sink's own `InvalidData`).
    pub fn apply(
        &mut self,
        event: &OwnedStudyEvent,
        sink: &mut dyn ResultSink,
    ) -> std::io::Result<()> {
        match event.as_event() {
            Some(borrowed) => {
                sink.on_event(&borrowed)?;
                self.builder.on_event(&borrowed)
            }
            None => {
                let OwnedStudyEvent::TargetWinnerSelected {
                    target,
                    cell,
                    traffic,
                    total_power_w,
                } = event
                else {
                    unreachable!("only winner events have no borrowed view")
                };
                // The winner is, by the engine's selection rule, an earlier
                // evaluation in stream order; find it and re-emit the full
                // event. Power compares bit-exact because the wire encoding
                // round-trips floats exactly.
                let winner = self
                    .builder
                    .evaluations()
                    .iter()
                    .find(|e| {
                        e.array.target == *target
                            && e.array.cell_name == *cell
                            && e.traffic.name == *traffic
                            && e.total_power().value().to_bits() == total_power_w.to_bits()
                    })
                    .ok_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            WinnerLookupFailed { cell: cell.clone() },
                        )
                    })?;
                sink.on_event(&StudyEvent::TargetWinnerSelected {
                    target: *target,
                    winner,
                })
            }
        }
    }

    /// The rebuilt result, or `None` when no terminal event was applied.
    pub fn finish(self) -> Option<StudyResult> {
        self.builder.finish()
    }

    /// The rebuilt result plus the fault-campaign outcome (for streams
    /// terminated by `fault_study_finished`), or `None` when no terminal
    /// event was applied.
    pub fn finish_parts(self) -> Option<(StudyResult, Option<FaultOutcome>)> {
        self.builder.finish_parts()
    }
}

/// A successfully replayed capture.
#[derive(Debug)]
pub struct Replay {
    /// The study name the stream carried.
    pub study: String,
    /// Frames consumed.
    pub frames: u64,
    /// The rebuilt result — byte-identical to the in-process run that
    /// produced the capture.
    pub result: StudyResult,
    /// The fault-campaign outcome, for captures terminated by
    /// `fault_study_finished`; `None` for plain studies.
    pub fault: Option<FaultOutcome>,
}

/// An incremental strict replayer: the line-at-a-time core of
/// [`replay_into`], shared with clients that receive frames over a socket
/// rather than from a finished capture file.
///
/// Feed every line through [`push_line`](Self::push_line) (blank lines are
/// ignored; the return value reports whether the stream just terminated),
/// then call [`finish`](Self::finish). The same strictness rules apply as
/// for captures: one study per stream, contiguous slot order from zero,
/// supported versions only, nothing after the terminal frame.
pub struct StreamReplayer {
    replayer: EventReplayer,
    study: Option<String>,
    frames: u64,
    lineno: u64,
    finished: bool,
}

impl Default for StreamReplayer {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamReplayer {
    /// A replayer that has consumed nothing.
    pub fn new() -> Self {
        Self {
            replayer: EventReplayer::new(),
            study: None,
            frames: 0,
            lineno: 0,
            finished: false,
        }
    }

    /// Frames applied so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// `true` once the terminal (`study_finished` /
    /// `fault_study_finished`) frame has been applied.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Applies one stream line, forwarding the decoded event (winners
    /// re-linked) into `sink`. Returns `Ok(true)` when this line was the
    /// stream's terminal frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed lines, version mismatches,
    /// out-of-order/duplicate slots, mid-stream study changes, frames
    /// after the terminal event, or sink failures (as [`WireError::Io`]).
    pub fn push_line(&mut self, line: &str, sink: &mut dyn ResultSink) -> Result<bool, WireError> {
        self.lineno += 1;
        let lineno = self.lineno;
        if line.trim().is_empty() {
            return Ok(false);
        }
        if self.finished() {
            return Err(WireError::Corrupt {
                line: lineno,
                reason: "frames after study_finished".to_owned(),
            });
        }
        let frame = WireFrame::parse(line).map_err(|e| e.at(lineno))?;
        match &self.study {
            None => self.study = Some(frame.study.clone()),
            Some(expected) if *expected != frame.study => {
                return Err(WireError::StudyMismatch {
                    line: lineno,
                    expected: expected.clone(),
                    found: frame.study,
                })
            }
            Some(_) => {}
        }
        match frame.seq.cmp(&self.frames) {
            std::cmp::Ordering::Less => {
                return Err(WireError::DuplicateSlot {
                    line: lineno,
                    seq: frame.seq,
                })
            }
            std::cmp::Ordering::Greater => {
                return Err(WireError::OutOfOrder {
                    line: lineno,
                    expected: self.frames,
                    found: frame.seq,
                })
            }
            std::cmp::Ordering::Equal => {}
        }
        let terminal = matches!(
            &frame.event,
            OwnedStudyEvent::StudyFinished { .. } | OwnedStudyEvent::FaultStudyFinished { .. }
        );
        self.replayer.apply(&frame.event, sink).map_err(|e| {
            match e
                .get_ref()
                .and_then(|inner| inner.downcast_ref::<WinnerLookupFailed>())
            {
                Some(lookup) => WireError::UnknownWinner {
                    line: lineno,
                    cell: lookup.cell.clone(),
                },
                None => WireError::Io(e),
            }
        })?;
        self.frames += 1;
        if terminal {
            self.finished = true;
        }
        Ok(terminal)
    }

    /// The completed [`Replay`].
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the stream ended before its terminal
    /// frame.
    pub fn finish(self) -> Result<Replay, WireError> {
        if !self.finished() {
            return Err(WireError::Truncated {
                frames: self.frames,
            });
        }
        let (result, fault) = self
            .replayer
            .finish_parts()
            .expect("finished stream builds a result");
        Ok(Replay {
            study: self.study.expect("finished stream has frames"),
            frames: self.frames,
            result,
            fault,
        })
    }
}

/// Strictly replays a captured wire stream, rebuilding the
/// [`StudyResult`] via [`StudyResultBuilder`].
///
/// # Errors
///
/// [`WireError`] on I/O failures, malformed lines, version mismatches,
/// out-of-order/duplicate slots, mid-stream study changes, or truncation.
pub fn replay<R: BufRead>(reader: R) -> Result<Replay, WireError> {
    replay_into(reader, &mut crate::stream::NullSink)
}

/// [`replay`], additionally streaming every event (winners re-linked) into
/// `sink` — so a capture can drive the same CSV/JSONL/summary sinks a live
/// run does.
///
/// # Errors
///
/// Same conditions as [`replay`], plus sink failures (as
/// [`WireError::Io`]).
pub fn replay_into<R: BufRead>(reader: R, sink: &mut dyn ResultSink) -> Result<Replay, WireError> {
    let mut replayer = StreamReplayer::new();
    for line in reader.lines() {
        replayer.push_line(&line?, sink)?;
    }
    replayer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parsing_and_ownership() {
        let shard = Shard::parse("1/3").unwrap();
        assert_eq!(shard, Shard::of(1, 3).unwrap());
        assert!(!shard.owns(0));
        assert!(shard.owns(1));
        assert!(shard.owns(4));
        assert_eq!(shard.to_string(), "1/3");
        assert!(Shard::parse("3/3").is_err());
        assert!(Shard::parse("0/0").is_err());
        assert!(Shard::parse("nope").is_err());
        assert!(Shard::WHOLE.owns(17));
    }

    #[test]
    fn merger_reorders_and_dedups() {
        let mut merger = SlotMerger::new();
        let mut seen = Vec::new();
        let mut deliver = |seq: u64, item: &'static str| -> Result<(), std::io::Error> {
            seen.push((seq, item));
            Ok(())
        };
        merger.offer(2, "c", &mut deliver).unwrap();
        merger.offer(0, "a", &mut deliver).unwrap();
        merger.offer(2, "c-again", &mut deliver).unwrap();
        merger.offer(1, "b", &mut deliver).unwrap();
        merger.offer(0, "a-again", &mut deliver).unwrap();
        assert_eq!(seen, vec![(0, "a"), (1, "b"), (2, "c")]);
        assert_eq!(merger.next_expected(), 3);
        assert_eq!(merger.pending(), 0);
        assert_eq!(merger.duplicates(), 2);
    }

    #[test]
    fn frame_version_is_enforced() {
        let line = r#"{"v":5,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        match WireFrame::parse(line) {
            Err(FrameError::Version { found }) => assert_eq!(found, 5),
            other => panic!("expected version error, got {other:?}"),
        }
        let zero = r#"{"v":0,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        assert!(matches!(
            WireFrame::parse(zero),
            Err(FrameError::Version { found: 0 })
        ));
        // Version-1 lines (pre-fault captures) still decode.
        let v1 = r#"{"v":1,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        let frame = WireFrame::parse(v1).unwrap();
        assert_eq!(frame.version, 1);
        let missing = r#"{"study":"s","seq":0,"event":"study_started"}"#;
        assert!(matches!(
            WireFrame::parse(missing),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn unknown_event_tags_are_rejected() {
        let line = r#"{"v":1,"study":"s","seq":0,"event":"quantum_flux"}"#;
        match WireFrame::parse(line) {
            Err(FrameError::Corrupt { reason }) => assert!(reason.contains("quantum_flux")),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn started_frame_roundtrips_through_text() {
        let frame = WireFrame {
            version: WIRE_VERSION,
            study: "demo".into(),
            seq: 0,
            event: OwnedStudyEvent::StudyStarted {
                name: "demo".into(),
                cells: 2,
                jobs: 4,
                targets: 1,
                traffic: 3,
            },
        };
        let line = frame.to_line();
        assert!(line.starts_with(r#"{"v":4,"study":"demo","seq":0,"event":"study_started""#));
        let back = WireFrame::parse(&line).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.to_line(), line, "parse -> encode must be identity");
    }

    #[test]
    fn fault_frames_roundtrip_through_text() {
        use nvmx_units::BitsPerCell;
        let trial = WireFrame {
            version: WIRE_VERSION,
            study: "faults".into(),
            seq: 11,
            event: OwnedStudyEvent::FaultTrialProduced {
                index: 5,
                trial: FaultTrial {
                    model_index: 2,
                    trial: 1,
                    cell: "RRAM-opt".into(),
                    bits_per_cell: BitsPerCell::Mlc2,
                    temperature_c: 85.0,
                    bit_error_rate: 1.25e-3,
                    injection_seed: 0xDEAD_BEEF_0BAD_F00D,
                    bits_total: 65536,
                    bits_flipped: 82,
                    accuracy: 0.1 + 0.2, // deliberately non-representable
                },
            },
        };
        let line = trial.to_line();
        assert!(line.contains(r#""event":"fault_trial_produced""#));
        let seed_field = format!(r#""injection_seed":{}"#, 0xDEAD_BEEF_0BAD_F00D_u64);
        assert!(line.contains(&seed_field));
        let back = WireFrame::parse(&line).unwrap();
        assert_eq!(back, trial);
        assert_eq!(back.to_line(), line);

        let verdict = WireFrame {
            version: WIRE_VERSION,
            study: "faults".into(),
            seq: 12,
            event: OwnedStudyEvent::AccuracyDegraded {
                index: 2,
                report: FaultModelReport {
                    model_index: 2,
                    cell: "RRAM-opt".into(),
                    bits_per_cell: BitsPerCell::Mlc2,
                    temperature_c: 85.0,
                    report: AccuracyReport {
                        baseline: 0.93,
                        mean: 0.88,
                        worst: 0.84,
                        bit_error_rate: 1.25e-3,
                        trials: 3,
                    },
                    acceptable: false,
                },
            },
        };
        let line = verdict.to_line();
        let back = WireFrame::parse(&line).unwrap();
        assert_eq!(back, verdict);
        assert_eq!(back.to_line(), line);

        let finished = WireFrame {
            version: WIRE_VERSION,
            study: "faults".into(),
            seq: 13,
            event: OwnedStudyEvent::FaultStudyFinished {
                name: "faults".into(),
                stats: FaultStudyStats {
                    base: StudyStats {
                        jobs: 4,
                        targets: 1,
                        traffic_patterns: 1,
                        arrays: 4,
                        evaluations: 4,
                        skipped: 0,
                        cache: None,
                    },
                    models: 6,
                    trials: 18,
                    degraded: 2,
                },
            },
        };
        let line = finished.to_line();
        assert!(line.contains(r#""event":"fault_study_finished""#));
        let back = WireFrame::parse(&line).unwrap();
        assert_eq!(back, finished);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn winner_frame_roundtrips_through_text() {
        let frame = WireFrame {
            version: WIRE_VERSION,
            study: "demo".into(),
            seq: 9,
            event: OwnedStudyEvent::TargetWinnerSelected {
                target: OptimizationTarget::ReadEdp,
                cell: "STT-opt".into(),
                traffic: "t".into(),
                total_power_w: 0.1 + 0.2, // deliberately non-representable
            },
        };
        let line = frame.to_line();
        let back = WireFrame::parse(&line).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.to_line(), line);
    }

    #[test]
    fn replay_rejects_empty_and_truncated_streams() {
        let err = replay(std::io::Cursor::new("")).unwrap_err();
        assert!(matches!(err, WireError::Truncated { frames: 0 }));
        let one_line = r#"{"v":1,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        let err = replay(std::io::Cursor::new(format!("{one_line}\n"))).unwrap_err();
        assert!(matches!(err, WireError::Truncated { frames: 1 }));
    }

    // ------------------------------------------------------ service frames

    #[test]
    fn request_frames_roundtrip_through_text() {
        let requests = vec![
            RequestFrame::Submit {
                priority: 7,
                config: Value::Object(vec![(
                    "name".to_owned(),
                    Value::Str("quickstart".to_owned()),
                )]),
            },
            RequestFrame::Status,
            RequestFrame::Cancel { session: 12 },
            RequestFrame::Events { session: 3 },
            RequestFrame::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert!(line.starts_with(&format!(
                r#"{{"v":{WIRE_VERSION},"request":"{}""#,
                request.kind()
            )));
            let back = RequestFrame::parse(&line).unwrap();
            assert_eq!(back, request);
            assert_eq!(back.to_line(), line, "parse -> encode must be identity");
        }
    }

    #[test]
    fn response_frames_roundtrip_through_text() {
        let cache = CacheStats {
            hits: 10,
            misses: 2,
            pruned: 5,
            l2_hits: 1,
            l2_misses: 1,
            l2_rejects: 0,
            l2_reject_classes: L2RejectClasses::default(),
        };
        let responses = vec![
            ResponseFrame::Submitted {
                session: 4,
                study: "quickstart".to_owned(),
                queue_depth: 2,
            },
            ResponseFrame::Status {
                draining: false,
                queue_depth: 1,
                capacity: 64,
                sessions: vec![SessionBrief {
                    session: 4,
                    study: "quickstart".to_owned(),
                    state: "running".to_owned(),
                    priority: 9,
                    events: 17,
                }],
                cache,
            },
            ResponseFrame::Cancelled {
                session: 4,
                active: true,
            },
            ResponseFrame::Done {
                session: 4,
                outcome: "finished".to_owned(),
                error: None,
                cache: Some(cache),
            },
            ResponseFrame::Done {
                session: 5,
                outcome: "failed".to_owned(),
                error: Some("config: unknown cell".to_owned()),
                cache: None,
            },
            ResponseFrame::Draining,
            ResponseFrame::Error {
                reason: "queue full".to_owned(),
            },
        ];
        for response in responses {
            let line = response.to_line();
            assert!(ResponseFrame::is_response_line(&line));
            let back = ResponseFrame::parse(&line).unwrap();
            assert_eq!(back, response);
            assert_eq!(back.to_line(), line, "parse -> encode must be identity");
        }
    }

    #[test]
    fn service_frames_reject_version_skew_and_corruption() {
        // Requests/responses exist only since v3: a v2 stamp is rejected
        // even though v2 is a valid *event* version.
        let stale = RequestFrame::Status.to_line().replacen(
            &format!("{{\"v\":{WIRE_VERSION},"),
            "{\"v\":2,",
            1,
        );
        assert!(matches!(
            RequestFrame::parse(&stale),
            Err(FrameError::Version { found: 2 })
        ));
        let stale = ResponseFrame::Draining.to_line().replacen(
            &format!("{{\"v\":{WIRE_VERSION},"),
            "{\"v\":2,",
            1,
        );
        assert!(matches!(
            ResponseFrame::parse(&stale),
            Err(FrameError::Version { found: 2 })
        ));
        // Unknown tags are corruption, not silently ignored.
        let line = format!(r#"{{"v":{WIRE_VERSION},"request":"teleport"}}"#);
        match RequestFrame::parse(&line) {
            Err(FrameError::Corrupt { reason }) => assert!(reason.contains("teleport")),
            other => panic!("expected corrupt, got {other:?}"),
        }
        let line = format!(r#"{{"v":{WIRE_VERSION},"response":"teleport"}}"#);
        match ResponseFrame::parse(&line) {
            Err(FrameError::Corrupt { reason }) => assert!(reason.contains("teleport")),
            other => panic!("expected corrupt, got {other:?}"),
        }
        // An event frame is not a response line.
        let event = r#"{"v":3,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        assert!(!ResponseFrame::is_response_line(event));
    }

    // ------------------------------------------------------ control frames

    #[test]
    fn worker_frames_roundtrip_through_text() {
        let frames = vec![
            WorkerFrame::Hello {
                name: "w0".to_owned(),
                study: "quickstart".to_owned(),
                resume: false,
            },
            WorkerFrame::Hello {
                name: "w1".to_owned(),
                study: "quickstart".to_owned(),
                resume: true,
            },
            WorkerFrame::Heartbeat {
                seen: 120,
                sent: 41,
            },
            WorkerFrame::Drained { lease: 3 },
            WorkerFrame::Done {
                seen: 257,
                sent: 90,
            },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(WorkerFrame::is_worker_line(&line));
            assert!(!LeaseFrame::is_lease_line(&line));
            assert!(line.starts_with(&format!(
                r#"{{"v":{WIRE_VERSION},"worker":"{}""#,
                frame.kind()
            )));
            let back = WorkerFrame::parse(&line).unwrap();
            assert_eq!(back, frame);
            assert_eq!(back.to_line(), line, "parse -> encode must be identity");
        }
    }

    #[test]
    fn lease_frames_roundtrip_through_text() {
        let frames = vec![
            LeaseFrame::Grant {
                id: 0,
                start: 0,
                end: 32,
            },
            LeaseFrame::Revoke { id: 0 },
            LeaseFrame::Shutdown,
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(LeaseFrame::is_lease_line(&line));
            assert!(!WorkerFrame::is_worker_line(&line));
            let back = LeaseFrame::parse(&line).unwrap();
            assert_eq!(back, frame);
            assert_eq!(back.to_line(), line, "parse -> encode must be identity");
        }
    }

    #[test]
    fn control_frames_reject_version_skew_and_corruption() {
        // Control frames exist only since v4: a v3 stamp is rejected even
        // though v3 is a valid event/service version.
        let stale = WorkerFrame::Drained { lease: 1 }.to_line().replacen(
            &format!("{{\"v\":{WIRE_VERSION},"),
            "{\"v\":3,",
            1,
        );
        assert!(matches!(
            WorkerFrame::parse(&stale),
            Err(FrameError::Version { found: 3 })
        ));
        let stale = LeaseFrame::Shutdown.to_line().replacen(
            &format!("{{\"v\":{WIRE_VERSION},"),
            "{\"v\":3,",
            1,
        );
        assert!(matches!(
            LeaseFrame::parse(&stale),
            Err(FrameError::Version { found: 3 })
        ));
        // Unknown tags are corruption.
        let line = format!(r#"{{"v":{WIRE_VERSION},"worker":"teleport"}}"#);
        match WorkerFrame::parse(&line) {
            Err(FrameError::Corrupt { reason }) => assert!(reason.contains("teleport")),
            other => panic!("expected corrupt, got {other:?}"),
        }
        // Empty or inverted grant ranges are corruption, not no-ops.
        let line = format!(r#"{{"v":{WIRE_VERSION},"lease":"grant","id":1,"start":8,"end":8}}"#);
        assert!(matches!(
            LeaseFrame::parse(&line),
            Err(FrameError::Corrupt { .. })
        ));
        // An event frame is neither a worker nor a lease line.
        let event = r#"{"v":4,"study":"s","seq":0,"event":"study_started","name":"s","cells":1,"jobs":1,"targets":1,"traffic":1}"#;
        assert!(!WorkerFrame::is_worker_line(event));
        assert!(!LeaseFrame::is_lease_line(event));
    }

    #[test]
    fn reject_classes_ride_the_cache_object_only_when_nonzero() {
        let mut stats = CacheStats {
            hits: 4,
            misses: 1,
            pruned: 0,
            l2_hits: 0,
            l2_misses: 1,
            l2_rejects: 0,
            l2_reject_classes: L2RejectClasses::default(),
        };
        // Clean run: the cache object is byte-identical to a v3 writer's.
        let clean = serde_json::to_string(&cache_value(&stats)).unwrap();
        assert!(!clean.contains("l2_reject_io"));
        assert_eq!(cache_from(&cache_value(&stats)).unwrap(), stats);
        // Version-skewed run: only the observed classes appear.
        stats.l2_rejects = 3;
        stats.l2_reject_classes.version = 2;
        stats.l2_reject_classes.corrupt = 1;
        let skewed = serde_json::to_string(&cache_value(&stats)).unwrap();
        assert!(skewed.contains(r#""l2_reject_version":2"#));
        assert!(skewed.contains(r#""l2_reject_corrupt":1"#));
        assert!(!skewed.contains("l2_reject_io"));
        assert_eq!(cache_from(&cache_value(&stats)).unwrap(), stats);
    }
}
