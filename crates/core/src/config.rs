//! The cross-stack configuration interface (paper Sec. II-A).
//!
//! NVMExplorer's artifact drives everything from JSON configs
//! (`python run.py config/<study>.json`); this module reproduces that
//! interface. A [`StudyConfig`] names the cells to sweep (tentpoles,
//! reference cells, or fully custom definitions), the array-level settings
//! (capacities, word width, node, programming depths, optimization
//! targets), the application traffic, and the constraints used to filter
//! results.

use nvmx_celldb::{custom, tentpole, CellDefinition, TechnologyClass};
use nvmx_nvsim::OptimizationTarget;
use nvmx_units::{BitsPerCell, Capacity, Meters};
use nvmx_workloads::cache::spec2017_llc_traffic;
use nvmx_workloads::dnn::{self, DnnUseCase, StoragePolicy};
use nvmx_workloads::graph;
use nvmx_workloads::traffic::{log_sweep, TrafficPattern};
use serde::{Deserialize, Serialize};

/// A full study specification, loadable from JSON.
///
/// Deliberately *not* `Deserialize`: [`StudyConfig::from_json`] is the one
/// parse path, so every consumer gets the section validation (required
/// sections, unknown-section rejection, per-section error context) — a
/// derived impl would silently default its way past typos.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StudyConfig {
    /// Study name (used in output file names).
    pub name: String,
    /// Which cells to sweep.
    #[serde(default)]
    pub cells: CellSelection,
    /// Array-level settings.
    #[serde(default)]
    pub array: ArraySettings,
    /// Application traffic.
    pub traffic: TrafficSpec,
    /// Result filters.
    #[serde(default)]
    pub constraints: Constraints,
    /// Where this study's results stream while it runs.
    #[serde(default)]
    pub output: OutputSpec,
    /// Persistent characterization store shared across processes.
    #[serde(default)]
    pub store: StoreSpec,
}

/// A parse failure for a study config, carrying the offending section so
/// queue operators get an actionable reject instead of a bare serde error.
#[derive(Debug)]
pub struct ConfigError {
    /// Top-level section (`"name"`, `"traffic"`, …) the error points at,
    /// `None` for document-level problems (syntax errors, wrong root type).
    section: Option<&'static str>,
    source: serde_json::Error,
}

impl ConfigError {
    fn at(section: &'static str, source: serde_json::Error) -> Self {
        Self {
            section: Some(section),
            source,
        }
    }

    fn document(source: serde_json::Error) -> Self {
        Self {
            section: None,
            source,
        }
    }

    /// The top-level config section the error points at, when known.
    pub fn section(&self) -> Option<&'static str> {
        self.section
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.section {
            Some(section) => write!(f, "invalid study config at `{section}`: {}", self.source),
            None => write!(f, "invalid study config: {}", self.source),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The top-level sections of a study config, with whether each is required.
///
/// Must list every field of [`StudyConfig`]. Kept in sync by construction:
/// `from_json` builds the struct from exactly these probes (a new field is
/// a compile error here), and the `json_roundtrip` test fails if an entry
/// is forgotten — `to_json` emits every field, and `from_json` rejects
/// sections not listed below.
const SECTIONS: [(&str, bool); 7] = [
    ("name", true),
    ("cells", false),
    ("array", false),
    ("traffic", true),
    ("constraints", false),
    ("output", false),
    ("store", false),
];

impl StudyConfig {
    /// Parses a study from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the offending top-level section —
    /// missing required fields, unknown sections, and per-section shape
    /// mismatches all point at where to look.
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        let value: serde::Value = serde_json::from_str(json).map_err(ConfigError::document)?;
        Self::from_value(&value)
    }

    /// Parses a study from an already-parsed JSON document. The campaign
    /// loader ([`CampaignConfig::from_json`]) strips the `fault` section
    /// and reuses this path, so both config kinds share exactly the same
    /// section validation.
    fn from_value(value: &serde::Value) -> Result<Self, ConfigError> {
        if value.as_object().is_none() {
            return Err(ConfigError::document(serde_json::Error::new(format!(
                "top-level JSON must be an object with `name` and `traffic`, got {}",
                value.kind()
            ))));
        }
        for (key, _) in value.as_object().expect("checked above") {
            if !SECTIONS.iter().any(|(known, _)| known == key) {
                let known = SECTIONS.map(|(name, _)| name).join(", ");
                return Err(ConfigError::document(serde_json::Error::new(format!(
                    "unknown section `{key}` (expected one of: {known})"
                ))));
            }
        }
        for (section, required) in SECTIONS {
            if required && value.get(section).is_none() {
                return Err(ConfigError::at(
                    section,
                    serde_json::Error::new(format!("missing required section `{section}`")),
                ));
            }
        }
        let section = |name: &'static str| value.get(name);
        Ok(Self {
            name: parse_section(section("name"), "name")?.expect("required"),
            cells: parse_section(section("cells"), "cells")?.unwrap_or_default(),
            array: parse_section(section("array"), "array")?.unwrap_or_default(),
            traffic: parse_section(section("traffic"), "traffic")?.expect("required"),
            constraints: parse_section(section("constraints"), "constraints")?.unwrap_or_default(),
            output: parse_section(section("output"), "output")?.unwrap_or_default(),
            store: parse_section(section("store"), "store")?.unwrap_or_default(),
        })
    }

    /// Serializes the study to pretty JSON (the artifact's config format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("StudyConfig is always serializable")
    }
}

/// Fault-campaign settings: which fault models to sweep and how hard to
/// stress each one. Present as a top-level `fault` section in a campaign
/// config (see [`CampaignConfig`]); every field has a default, so
/// `"fault": {}` is the smallest valid campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct FaultSpec {
    /// Injection trials per fault model (at least 1).
    pub trials: u32,
    /// Campaign seed; each trial's injection seed is derived from
    /// `(seed, trial slot)` ([`crate::fault_study::injection_seed`]).
    pub seed: u64,
    /// Programming depths to derive fault models for.
    pub bits_per_cell: Vec<BitsPerCell>,
    /// Operating temperatures (°C) to derive cell fault models at —
    /// retention-vs-temperature scaling per the Arrhenius law.
    pub temperatures_c: Vec<f64>,
    /// Raw bit error rates to sweep in addition to the cell-derived
    /// models (the paper also accepts "an expected error rate" directly).
    /// Each is expanded across `bits_per_cell` at the 25 °C reference.
    pub raw_bers: Vec<f64>,
    /// Maximum tolerated mean-accuracy degradation (baseline − mean).
    pub tolerance: f64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            trials: 3,
            seed: 0,
            bits_per_cell: vec![BitsPerCell::Slc, BitsPerCell::Mlc2],
            temperatures_c: vec![25.0],
            raw_bers: Vec::new(),
            tolerance: 0.05,
        }
    }
}

/// A fault campaign: a base study plus the fault sweep riding on it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultStudyConfig {
    /// The base sweep study (runs unchanged, streaming the same events).
    pub study: StudyConfig,
    /// The fault sweep.
    pub fault: FaultSpec,
}

impl FaultStudyConfig {
    /// Serializes the campaign to pretty JSON: the study's sections plus
    /// the `fault` section, exactly what [`CampaignConfig::from_json`]
    /// parses back.
    pub fn to_json(&self) -> String {
        let serde::Value::Object(mut fields) = self.study.to_value() else {
            unreachable!("StudyConfig serializes to an object")
        };
        fields.push(("fault".to_owned(), self.fault.to_value()));
        serde_json::to_string_pretty(&serde::Value::Object(fields))
            .expect("FaultStudyConfig is always serializable")
    }
}

/// Either kind of campaign the runner binaries accept: a plain sweep
/// study, or a fault campaign (a study with a top-level `fault` section).
///
/// [`StudyConfig::from_json`] keeps rejecting `fault` as an unknown
/// section — callers that can only run plain studies fail loudly instead
/// of silently dropping the fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignConfig {
    /// A plain sweep study (no `fault` section).
    Study(StudyConfig),
    /// A fault campaign.
    Fault(FaultStudyConfig),
}

impl CampaignConfig {
    /// Parses either campaign kind, dispatching on the presence of a
    /// top-level `fault` section.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the offending section, exactly like
    /// [`StudyConfig::from_json`] (with `fault` as one more section).
    pub fn from_json(json: &str) -> Result<Self, ConfigError> {
        let value: serde::Value = serde_json::from_str(json).map_err(ConfigError::document)?;
        let Some(obj) = value.as_object() else {
            // Not an object: reuse the study path's document-level error.
            return StudyConfig::from_value(&value).map(Self::Study);
        };
        let Some((_, fault_value)) = obj.iter().find(|(k, _)| k == "fault") else {
            return StudyConfig::from_value(&value).map(Self::Study);
        };
        let fault: FaultSpec =
            serde_json::from_value(fault_value).map_err(|e| ConfigError::at("fault", e))?;
        let rest =
            serde::Value::Object(obj.iter().filter(|(k, _)| k != "fault").cloned().collect());
        let study = StudyConfig::from_value(&rest)?;
        Ok(Self::Fault(FaultStudyConfig { study, fault }))
    }

    /// The base study of either campaign kind.
    pub fn study(&self) -> &StudyConfig {
        match self {
            Self::Study(study) => study,
            Self::Fault(campaign) => &campaign.study,
        }
    }

    /// The campaign name (the base study's name).
    pub fn name(&self) -> &str {
        &self.study().name
    }
}

/// Deserializes one top-level section, wrapping failures with the section
/// name. `Ok(None)` means the section was absent (callers apply defaults).
fn parse_section<T: serde::Deserialize>(
    value: Option<&serde::Value>,
    section: &'static str,
) -> Result<Option<T>, ConfigError> {
    value
        .map(|v| serde_json::from_value(v).map_err(|e| ConfigError::at(section, e)))
        .transpose()
}

/// Where (and how) a study's results stream while it runs — consumed by the
/// sink layer (`nvmx_viz::sink`) and the config-driven runner.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct OutputSpec {
    /// Stream one CSV row per evaluation to this path.
    pub csv: Option<String>,
    /// Stream every study event as a JSON line to this path.
    pub jsonl: Option<String>,
    /// Print a per-target winner summary table when the study finishes.
    pub summary: bool,
}

impl OutputSpec {
    /// `true` when the spec requests no output at all.
    pub fn is_empty(&self) -> bool {
        self.csv.is_none() && self.jsonl.is_none() && !self.summary
    }
}

/// The persistent characterization store a study's subarray cache is
/// backed by (`nvmx_nvsim::store`) — the on-disk L2 that lets cold
/// processes, worker shards, and replays share warm physics. A `--store
/// DIR` flag on the runner binaries overrides this section.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct StoreSpec {
    /// Store directory (created if absent). `None` disables the L2.
    pub dir: Option<String>,
}

impl StoreSpec {
    /// `true` when no store is configured.
    pub fn is_empty(&self) -> bool {
        self.dir.is_none()
    }
}

/// Which cell definitions a study sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct CellSelection {
    /// Technology classes to include (`None` = all validated classes).
    pub technologies: Option<Vec<TechnologyClass>>,
    /// Include the optimistic/pessimistic tentpole pair per class.
    pub tentpoles: bool,
    /// Include the industry RRAM reference cell (paper ref. \[29]).
    pub reference_rram: bool,
    /// Include the 16 nm SRAM baseline.
    pub sram_baseline: bool,
    /// Include the back-gated FeFET co-design cell (paper Sec. V-A).
    pub back_gated_fefet: bool,
    /// Fully custom cell definitions.
    pub custom: Vec<CellDefinition>,
}

impl Default for CellSelection {
    fn default() -> Self {
        Self {
            technologies: None,
            tentpoles: true,
            reference_rram: true,
            sram_baseline: true,
            back_gated_fefet: false,
            custom: Vec::new(),
        }
    }
}

impl CellSelection {
    /// Resolves the selection into concrete cell definitions.
    pub fn resolve(&self) -> Vec<CellDefinition> {
        let wanted = |tech: TechnologyClass| match &self.technologies {
            Some(list) => list.contains(&tech),
            None => tech.is_validated() && tech != TechnologyClass::Sram,
        };
        let mut cells = Vec::new();
        if self.tentpoles {
            cells.extend(
                tentpole::tentpoles(nvmx_celldb::survey::database())
                    .into_iter()
                    .filter(|c| wanted(c.technology)),
            );
        }
        if self.reference_rram {
            cells.push(custom::reference_rram());
        }
        if self.sram_baseline {
            cells.push(custom::sram_16nm());
        }
        if self.back_gated_fefet {
            cells.push(custom::back_gated_fefet());
        }
        cells.extend(self.custom.iter().cloned());
        cells
    }
}

/// Array-level sweep settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct ArraySettings {
    /// Capacities in MiB.
    pub capacities_mib: Vec<u64>,
    /// Access width in bits.
    pub word_bits: u64,
    /// Process node in nm for eNVM cells (SRAM keeps its native node).
    pub node_nm: f64,
    /// Programming depths to sweep.
    pub bits_per_cell: Vec<BitsPerCell>,
    /// Optimization targets to sweep.
    pub targets: Vec<OptimizationTarget>,
}

impl Default for ArraySettings {
    fn default() -> Self {
        Self {
            capacities_mib: vec![2],
            word_bits: 128,
            node_nm: 22.0,
            bits_per_cell: vec![BitsPerCell::Slc],
            targets: vec![OptimizationTarget::ReadEdp],
        }
    }
}

impl ArraySettings {
    /// Node for a specific cell: eNVMs retarget to the study node, the SRAM
    /// baseline keeps its native (16 nm) node, matching the paper's setup.
    pub fn node_for(&self, cell: &CellDefinition) -> Meters {
        if cell.technology == TechnologyClass::Sram {
            cell.default_node
        } else {
            Meters::from_nano(self.node_nm)
        }
    }

    /// The capacities as typed values.
    pub fn capacities(&self) -> Vec<Capacity> {
        self.capacities_mib
            .iter()
            .map(|&mib| Capacity::from_mebibytes(mib))
            .collect()
    }
}

/// Application traffic specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TrafficSpec {
    /// Explicit traffic patterns.
    Explicit {
        /// The patterns to apply.
        patterns: Vec<TrafficPattern>,
    },
    /// A log-spaced generic sweep (paper Sec. IV-B1).
    GenericSweep {
        /// Minimum read rate, bytes/s.
        read_min: f64,
        /// Maximum read rate, bytes/s.
        read_max: f64,
        /// Read-axis steps.
        read_steps: usize,
        /// Minimum write rate, bytes/s.
        write_min: f64,
        /// Maximum write rate, bytes/s.
        write_max: f64,
        /// Write-axis steps.
        write_steps: usize,
        /// Access granularity, bytes.
        access_bytes: u64,
    },
    /// A DNN accelerator use case at a fixed frame rate (paper Sec. IV-A1).
    DnnContinuous {
        /// `"resnet26"`, `"resnet18"`, or `"albert"`.
        model: String,
        /// Concurrent tasks (1 or 3).
        tasks: u64,
        /// Store activations too?
        store_activations: bool,
        /// Frames per second.
        fps: f64,
    },
    /// The SPEC CPU2017-class LLC suite (paper Sec. IV-C).
    SpecLlc {
        /// Simulated lookups per benchmark.
        lookups: u64,
        /// Simulation seed.
        seed: u64,
    },
    /// BFS traffic on a synthetic social graph (paper Sec. IV-B2).
    GraphBfs {
        /// `"facebook"` or `"wikipedia"`.
        graph: String,
        /// Accelerator edge throughput, edges/s.
        edges_per_sec: f64,
        /// Generator seed.
        seed: u64,
    },
}

/// Error resolving a traffic or model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNameError {
    /// What kind of name failed to resolve.
    pub kind: &'static str,
    /// The offending name.
    pub name: String,
}

impl std::fmt::Display for UnknownNameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown {}: `{}`", self.kind, self.name)
    }
}

impl std::error::Error for UnknownNameError {}

/// Looks up a paper network by name.
pub fn model_by_name(name: &str) -> Result<dnn::DnnModel, UnknownNameError> {
    match name.to_ascii_lowercase().as_str() {
        "resnet26" => Ok(dnn::resnet26()),
        "resnet18" => Ok(dnn::resnet18()),
        "albert" => Ok(dnn::albert()),
        "albert-embeddings" => Ok(dnn::albert_embeddings_only()),
        other => Err(UnknownNameError {
            kind: "DNN model",
            name: other.to_owned(),
        }),
    }
}

impl TrafficSpec {
    /// Resolves the specification into concrete traffic patterns.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownNameError`] for unrecognized model/graph names.
    pub fn resolve(&self) -> Result<Vec<TrafficPattern>, UnknownNameError> {
        match self {
            Self::Explicit { patterns } => Ok(patterns.clone()),
            Self::GenericSweep {
                read_min,
                read_max,
                read_steps,
                write_min,
                write_max,
                write_steps,
                access_bytes,
            } => Ok(log_sweep(
                *read_min,
                *read_max,
                *read_steps,
                *write_min,
                *write_max,
                *write_steps,
                *access_bytes,
            )),
            Self::DnnContinuous {
                model,
                tasks,
                store_activations,
                fps,
            } => {
                let model = model_by_name(model)?;
                let storage = if *store_activations {
                    StoragePolicy::WeightsAndActivations
                } else {
                    StoragePolicy::WeightsOnly
                };
                let use_case = if *tasks > 1 {
                    DnnUseCase::multi(model, storage)
                } else {
                    DnnUseCase::single(model, storage)
                };
                Ok(vec![use_case.continuous_traffic(*fps)])
            }
            Self::SpecLlc { lookups, seed } => Ok(spec2017_llc_traffic(*lookups, *seed)
                .into_iter()
                .map(|t| t.traffic)
                .collect()),
            Self::GraphBfs {
                graph: graph_name,
                edges_per_sec,
                seed,
            } => {
                let g = match graph_name.to_ascii_lowercase().as_str() {
                    "facebook" => graph::facebook_like(*seed),
                    "wikipedia" => graph::wikipedia_like(*seed),
                    other => {
                        return Err(UnknownNameError {
                            kind: "graph",
                            name: other.to_owned(),
                        })
                    }
                };
                let (_, counter) = g.bfs(0);
                Ok(vec![graph::accelerator_traffic(
                    &g,
                    "BFS",
                    counter,
                    *edges_per_sec,
                )])
            }
        }
    }
}

/// Result filters (paper Sec. II-C: "filter results in terms of important
/// constraints").
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(default)]
pub struct Constraints {
    /// Maximum total memory power, watts.
    pub max_power_w: Option<f64>,
    /// Maximum array area, mm².
    pub max_area_mm2: Option<f64>,
    /// Minimum projected lifetime, years.
    pub min_lifetime_years: Option<f64>,
    /// Maximum read latency, ns.
    pub max_read_latency_ns: Option<f64>,
    /// Minimum application accuracy under faults (fraction), enforced by
    /// fault-injection studies.
    pub min_accuracy: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selection_includes_tentpoles_reference_and_sram() {
        let cells = CellSelection::default().resolve();
        // 6 validated NVM classes × 2 flavors + reference RRAM + SRAM.
        assert_eq!(cells.len(), 14);
        assert!(cells.iter().any(|c| c.technology == TechnologyClass::Sram));
        assert!(!cells.iter().any(|c| c.technology == TechnologyClass::Sot));
    }

    #[test]
    fn selection_can_narrow_technologies() {
        let selection = CellSelection {
            technologies: Some(vec![TechnologyClass::Stt]),
            reference_rram: false,
            sram_baseline: false,
            ..CellSelection::default()
        };
        let cells = selection.resolve();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.technology == TechnologyClass::Stt));
    }

    #[test]
    fn json_roundtrip() {
        let config = StudyConfig {
            name: "main_dnn_study".into(),
            cells: CellSelection::default(),
            array: ArraySettings {
                capacities_mib: vec![2],
                ..ArraySettings::default()
            },
            traffic: TrafficSpec::DnnContinuous {
                model: "resnet26".into(),
                tasks: 1,
                store_activations: false,
                fps: 60.0,
            },
            constraints: Constraints {
                max_power_w: Some(0.1),
                ..Constraints::default()
            },
            output: OutputSpec {
                csv: Some("out/results.csv".into()),
                jsonl: None,
                summary: true,
            },
            store: StoreSpec {
                dir: Some("stores/shared".into()),
            },
        };
        let json = config.to_json();
        let parsed = StudyConfig::from_json(&json).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn parse_errors_name_the_offending_section() {
        // Broken traffic section: unknown kind.
        let err = StudyConfig::from_json(r#"{"name": "s", "traffic": {"kind": "quantum_tunnel"}}"#)
            .unwrap_err();
        assert_eq!(err.section(), Some("traffic"));
        assert!(err.to_string().contains("traffic"), "{err}");
        assert!(err.to_string().contains("quantum_tunnel"), "{err}");

        // Wrong type inside the array section.
        let err = StudyConfig::from_json(
            r#"{"name": "s", "array": {"word_bits": "wide"},
                "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}}"#,
        )
        .unwrap_err();
        assert_eq!(err.section(), Some("array"));

        // Missing required sections point at themselves.
        let err = StudyConfig::from_json(r#"{"name": "s"}"#).unwrap_err();
        assert_eq!(err.section(), Some("traffic"));
        let err = StudyConfig::from_json("{}").unwrap_err();
        assert_eq!(err.section(), Some("name"));

        // Syntax errors and non-object roots are document-level.
        let err = StudyConfig::from_json("{\"name\": }").unwrap_err();
        assert_eq!(err.section(), None);
        let err = StudyConfig::from_json("[1, 2]").unwrap_err();
        assert!(err.to_string().contains("object"), "{err}");

        // Typos in section names are caught instead of silently ignored.
        let err = StudyConfig::from_json(
            r#"{"name": "s", "trafic": {"kind": "spec_llc", "lookups": 1, "seed": 1}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("trafic"), "{err}");
    }

    #[test]
    fn campaign_configs_dispatch_on_the_fault_section() {
        let plain = r#"{"name": "s", "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}}"#;
        assert!(matches!(
            CampaignConfig::from_json(plain).unwrap(),
            CampaignConfig::Study(_)
        ));
        // A plain-study parser must keep rejecting the fault section.
        let with_fault = r#"{
            "name": "s",
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1},
            "fault": {"trials": 2, "seed": 9, "raw_bers": [1e-3]}
        }"#;
        assert!(StudyConfig::from_json(with_fault).is_err());
        let CampaignConfig::Fault(campaign) = CampaignConfig::from_json(with_fault).unwrap() else {
            panic!("fault section must select the fault campaign kind")
        };
        assert_eq!(campaign.study.name, "s");
        assert_eq!(campaign.fault.trials, 2);
        assert_eq!(campaign.fault.seed, 9);
        assert_eq!(campaign.fault.raw_bers, vec![1.0e-3]);
        // Defaults fill the omitted fields.
        assert_eq!(campaign.fault.tolerance, 0.05);
        assert_eq!(
            campaign.fault.bits_per_cell,
            vec![BitsPerCell::Slc, BitsPerCell::Mlc2]
        );
        // `"fault": {}` is the smallest valid campaign.
        let minimal = r#"{
            "name": "s",
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1},
            "fault": {}
        }"#;
        let CampaignConfig::Fault(minimal) = CampaignConfig::from_json(minimal).unwrap() else {
            panic!("empty fault section still selects the fault kind")
        };
        assert_eq!(minimal.fault, FaultSpec::default());
    }

    #[test]
    fn campaign_errors_name_the_offending_section() {
        let err = CampaignConfig::from_json(
            r#"{"name": "s", "traffic": {"kind": "spec_llc", "lookups": 1, "seed": 1},
                "fault": {"trials": "many"}}"#,
        )
        .unwrap_err();
        assert_eq!(err.section(), Some("fault"));
        // Study-section errors surface unchanged through the campaign path.
        let err = CampaignConfig::from_json(r#"{"name": "s", "fault": {}}"#).unwrap_err();
        assert_eq!(err.section(), Some("traffic"));
        let err = CampaignConfig::from_json("[1]").unwrap_err();
        assert!(err.to_string().contains("object"), "{err}");
    }

    #[test]
    fn fault_campaign_json_roundtrip() {
        let campaign = FaultStudyConfig {
            study: StudyConfig::from_json(
                r#"{"name": "rt", "traffic": {"kind": "spec_llc", "lookups": 5, "seed": 3}}"#,
            )
            .unwrap(),
            fault: FaultSpec {
                trials: 4,
                seed: 0xDEAD,
                bits_per_cell: vec![BitsPerCell::Mlc2],
                temperatures_c: vec![25.0, 85.0],
                raw_bers: vec![1.0e-4, 1.0e-2],
                tolerance: 0.1,
            },
        };
        let parsed = CampaignConfig::from_json(&campaign.to_json()).unwrap();
        assert_eq!(parsed, CampaignConfig::Fault(campaign));
    }

    #[test]
    fn store_spec_defaults_to_disabled() {
        let study = StudyConfig::from_json(
            r#"{"name": "s", "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}}"#,
        )
        .unwrap();
        assert!(study.store.is_empty());
        let with_store = StudyConfig::from_json(
            r#"{
            "name": "s",
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1},
            "store": {"dir": "stores/warm"}
        }"#,
        )
        .unwrap();
        assert_eq!(with_store.store.dir.as_deref(), Some("stores/warm"));
        assert!(!with_store.store.is_empty());
    }

    #[test]
    fn output_spec_defaults_to_empty() {
        let json = r#"{
            "name": "s",
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}
        }"#;
        let study = StudyConfig::from_json(json).unwrap();
        assert!(study.output.is_empty());
        let with_output = StudyConfig::from_json(
            r#"{
            "name": "s",
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1},
            "output": {"jsonl": "events.jsonl"}
        }"#,
        )
        .unwrap();
        assert_eq!(with_output.output.jsonl.as_deref(), Some("events.jsonl"));
        assert!(!with_output.output.is_empty());
    }

    #[test]
    fn partial_sections_fill_gaps_from_the_containers_default() {
        // A `cells` section that only narrows technologies must keep the
        // container defaults for everything it omits — notably
        // `tentpoles: true`, whose default differs from `bool::default()`
        // (real serde container-default semantics).
        let study = StudyConfig::from_json(
            r#"{
            "name": "s",
            "cells": {"technologies": ["Stt"], "sram_baseline": false, "reference_rram": false},
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}
        }"#,
        )
        .unwrap();
        assert!(study.cells.tentpoles, "container default must survive");
        assert!(!study.cells.sram_baseline);
        let cells = study.cells.resolve();
        assert_eq!(cells.len(), 2, "STT optimistic + pessimistic tentpoles");
        // Same for a partial `array` section.
        let study = StudyConfig::from_json(
            r#"{
            "name": "s",
            "array": {"capacities_mib": [4]},
            "traffic": {"kind": "spec_llc", "lookups": 10, "seed": 1}
        }"#,
        )
        .unwrap();
        assert_eq!(study.array.capacities_mib, vec![4]);
        assert_eq!(study.array.word_bits, ArraySettings::default().word_bits);
        assert_eq!(study.array.targets, ArraySettings::default().targets);
    }

    #[test]
    fn sram_keeps_native_node() {
        let settings = ArraySettings::default();
        let sram = custom::sram_16nm();
        let stt =
            tentpole::tentpole_cell(TechnologyClass::Stt, nvmx_celldb::CellFlavor::Optimistic)
                .unwrap();
        assert!((settings.node_for(&sram).value() - 16.0e-9).abs() < 1e-15);
        assert!((settings.node_for(&stt).value() - 22.0e-9).abs() < 1e-15);
    }

    #[test]
    fn traffic_specs_resolve() {
        let dnn = TrafficSpec::DnnContinuous {
            model: "resnet26".into(),
            tasks: 3,
            store_activations: true,
            fps: 60.0,
        };
        let patterns = dnn.resolve().unwrap();
        assert_eq!(patterns.len(), 1);
        assert!(patterns[0].write_bytes_per_sec > 0.0);

        let sweep = TrafficSpec::GenericSweep {
            read_min: 1.0e9,
            read_max: 10.0e9,
            read_steps: 3,
            write_min: 1.0e6,
            write_max: 100.0e6,
            write_steps: 3,
            access_bytes: 8,
        };
        assert_eq!(sweep.resolve().unwrap().len(), 9);
    }

    #[test]
    fn unknown_model_is_an_error() {
        let bad = TrafficSpec::DnnContinuous {
            model: "vgg".into(),
            tasks: 1,
            store_activations: false,
            fps: 60.0,
        };
        let err = bad.resolve().unwrap_err();
        assert!(err.to_string().contains("vgg"));
    }
}
