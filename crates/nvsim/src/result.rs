//! Array characterization results and optimization targets.

use crate::bank::Organization;
use nvmx_celldb::{CellFlavor, TechnologyClass};
use nvmx_units::{BitsPerCell, Capacity, Joules, Ratio, Seconds, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

/// What the internal-organization search minimizes (NVSim's optimization
/// targets; paper Fig. 3 sweeps all of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizationTarget {
    /// Minimize read latency.
    ReadLatency,
    /// Minimize write latency.
    WriteLatency,
    /// Minimize read energy per access.
    ReadEnergy,
    /// Minimize write energy per access.
    WriteEnergy,
    /// Minimize read energy-delay product.
    ReadEdp,
    /// Minimize write energy-delay product.
    WriteEdp,
    /// Minimize total area.
    Area,
    /// Minimize standby leakage power.
    Leakage,
}

impl OptimizationTarget {
    /// All targets, in report order.
    pub const ALL: [Self; 8] = [
        Self::ReadLatency,
        Self::WriteLatency,
        Self::ReadEnergy,
        Self::WriteEnergy,
        Self::ReadEdp,
        Self::WriteEdp,
        Self::Area,
        Self::Leakage,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::ReadLatency => "ReadLatency",
            Self::WriteLatency => "WriteLatency",
            Self::ReadEnergy => "ReadEnergy",
            Self::WriteEnergy => "WriteEnergy",
            Self::ReadEdp => "ReadEDP",
            Self::WriteEdp => "WriteEDP",
            Self::Area => "Area",
            Self::Leakage => "Leakage",
        }
    }
}

impl std::fmt::Display for OptimizationTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full characterization of one memory array design point — the unit of
/// data every downstream study consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayCharacterization {
    /// Name of the underlying cell (e.g. `"STT-opt"`).
    pub cell_name: String,
    /// Technology class.
    pub technology: TechnologyClass,
    /// Tentpole flavor of the underlying cell.
    pub flavor: CellFlavor,
    /// Total storage capacity.
    pub capacity: Capacity,
    /// Process node, nm.
    pub node_nm: f64,
    /// Programming depth.
    pub bits_per_cell: BitsPerCell,
    /// Optimization target that selected this organization.
    pub target: OptimizationTarget,
    /// Access width, bits.
    pub word_bits: u64,
    /// Read latency.
    pub read_latency: Seconds,
    /// Write latency.
    pub write_latency: Seconds,
    /// Read cycle time.
    pub read_cycle: Seconds,
    /// Write cycle time.
    pub write_cycle: Seconds,
    /// Energy per read access.
    pub read_energy: Joules,
    /// Energy per write access.
    pub write_energy: Joules,
    /// Standby leakage power.
    pub leakage: Watts,
    /// Total area.
    pub area: SquareMillimeters,
    /// Cell-area fraction.
    pub area_efficiency: Ratio,
    /// Sustainable random-access read bandwidth, bytes/s.
    pub read_bandwidth: f64,
    /// Sustainable random-access write bandwidth, bytes/s.
    pub write_bandwidth: f64,
    /// Cell write endurance, cycles.
    pub endurance_cycles: f64,
    /// Cell retention.
    pub retention: Seconds,
    /// Whether the array retains data when powered off.
    pub nonvolatile: bool,
    /// Winning internal organization.
    pub organization: Organization,
}

impl ArrayCharacterization {
    /// Storage density including periphery, Mb/mm².
    pub fn density_mbit_per_mm2(&self) -> f64 {
        self.capacity.as_megabits() / self.area.value()
    }

    /// Read energy per logical bit delivered.
    pub fn read_energy_per_bit(&self) -> Joules {
        self.read_energy / self.word_bits as f64
    }

    /// Write energy per logical bit written.
    pub fn write_energy_per_bit(&self) -> Joules {
        self.write_energy / self.word_bits as f64
    }

    /// Read energy-delay product, J·s.
    pub fn read_edp(&self) -> f64 {
        self.read_energy.value() * self.read_latency.value()
    }

    /// Write energy-delay product, J·s.
    pub fn write_edp(&self) -> f64 {
        self.write_energy.value() * self.write_latency.value()
    }

    /// The metric value this array would score under `target`
    /// (lower is better for every target).
    pub fn score(&self, target: OptimizationTarget) -> f64 {
        match target {
            OptimizationTarget::ReadLatency => self.read_latency.value(),
            OptimizationTarget::WriteLatency => self.write_latency.value(),
            OptimizationTarget::ReadEnergy => self.read_energy.value(),
            OptimizationTarget::WriteEnergy => self.write_energy.value(),
            OptimizationTarget::ReadEdp => self.read_edp(),
            OptimizationTarget::WriteEdp => self.write_edp(),
            OptimizationTarget::Area => self.area.value(),
            OptimizationTarget::Leakage => self.leakage.value(),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} {} [{}]: rd {} / {} | wr {} / {} | leak {} | {} | {:.1} Mb/mm^2",
            self.cell_name,
            self.capacity,
            self.target,
            self.read_latency,
            self.read_energy,
            self.write_latency,
            self.write_energy,
            self.leakage,
            self.area,
            self.density_mbit_per_mm2(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::Organization;

    fn dummy() -> ArrayCharacterization {
        ArrayCharacterization {
            cell_name: "STT-opt".into(),
            technology: TechnologyClass::Stt,
            flavor: CellFlavor::Optimistic,
            capacity: Capacity::from_mebibytes(2),
            node_nm: 22.0,
            bits_per_cell: BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
            word_bits: 64,
            read_latency: Seconds::from_nano(2.0),
            write_latency: Seconds::from_nano(12.0),
            read_cycle: Seconds::from_nano(2.5),
            write_cycle: Seconds::from_nano(12.5),
            read_energy: Joules::from_pico(16.0),
            write_energy: Joules::from_pico(64.0),
            leakage: Watts::from_milli(2.0),
            area: SquareMillimeters::new(0.25),
            area_efficiency: Ratio::new(0.55),
            read_bandwidth: 12.0e9,
            write_bandwidth: 2.0e9,
            endurance_cycles: 1.0e15,
            retention: Seconds::new(1.0e8),
            nonvolatile: true,
            organization: Organization {
                rows: 512,
                cols: 1024,
                mux: 8,
                active_subarrays: 1,
                total_subarrays: 32,
            },
        }
    }

    #[test]
    fn density_and_per_bit_math() {
        let a = dummy();
        assert!((a.density_mbit_per_mm2() - 16.0 / 0.25).abs() < 1e-9);
        assert!((a.read_energy_per_bit().value() - 0.25e-12).abs() < 1e-18);
    }

    #[test]
    fn score_matches_metrics() {
        let a = dummy();
        assert_eq!(a.score(OptimizationTarget::ReadLatency), 2.0e-9);
        assert_eq!(a.score(OptimizationTarget::Area), 0.25);
        assert!((a.score(OptimizationTarget::ReadEdp) - 32.0e-21).abs() < 1e-27);
    }

    #[test]
    fn all_targets_have_unique_labels() {
        let mut labels: Vec<_> = OptimizationTarget::ALL.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), OptimizationTarget::ALL.len());
    }

    #[test]
    fn summary_mentions_cell_and_capacity() {
        let s = dummy().summary();
        assert!(s.contains("STT-opt"));
        assert!(s.contains("2 MiB"));
    }
}
