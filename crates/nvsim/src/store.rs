//! The persistent, content-addressed characterization store: an on-disk L2
//! under the in-memory [`SubarrayCache`](crate::cache::SubarrayCache).
//!
//! **The normative specification of the slab codec — header and segment
//! layout, checksum and rejection semantics, [`STORE_VERSION`] history —
//! is `docs/PROTOCOL.md` § Store slab codec at the repository root. That
//! document is the source of truth; this module implements it, and CI
//! greps the two against each other.**
//!
//! # Why
//!
//! Subarray characterization is a pure function of `(cell, node,
//! programming depth, geometry)` — nothing about it is per-process — yet
//! every process cold-starts its [`SubarrayCache`](crate::cache::SubarrayCache) and re-derives the same
//! geometries. This module persists each cache *slab* (the full DSE-grid
//! worth of characterized geometries for one `(cell, node, depth)` key) as
//! one content-addressed file, so campaign restarts, worker shards on the
//! same host, and replayed studies pay characterization cost once per
//! fingerprint ever, not once per process.
//!
//! # Keys
//!
//! A slab file is addressed by exactly the in-memory cache key: the FNV-1a
//! [`CellDefinition::fingerprint`], the technology node's feature-size bit
//! pattern, and the programming depth —
//! `{fingerprint:016x}-{node_bits:016x}-{depth}.slab` under the store
//! directory. Fingerprints are 64-bit hashes, so the full
//! [`CellDefinition`] rides inside the segment (as its canonical JSON) and
//! is verified on load; a collision is a typed [`StoreError::Collision`]
//! that degrades to recompute, never to another cell's physics.
//!
//! # Codec
//!
//! The encoding follows `core::wire`'s strictness discipline: a magic +
//! [`STORE_VERSION`] header (plus the expected slot-segment count, so
//! truncation at a segment boundary is still detected), then
//! length-prefixed segments each closed by an FNV-1a checksum of its
//! payload. Unknown versions, bad magic, short reads, checksum mismatches,
//! geometry/slot disagreements, and cell collisions are all **typed
//! errors** ([`StoreError`]) — a hostile or half-synced store directory
//! degrades to recomputation, never to wrong data. Subarray floats are
//! stored as raw `f64` bit patterns, so a loaded geometry is bit-identical
//! to the characterization that produced it.
//!
//! # Atomicity
//!
//! Slabs are published via [`crate::fsutil::write_file_atomic`] (sibling
//! temp file + rename, temp names unique per process *and* writer), and
//! publication is write-once: an existing slab file is never rewritten.
//! Two processes racing to publish the same fingerprint each write a
//! complete, identical file and the last rename wins; a killed process
//! leaves at most an orphaned temp file, never a torn slab.

use crate::cache::SLOTS;
use crate::fsutil::write_file_atomic;
use crate::subarray::Subarray;
use nvmx_celldb::CellDefinition;
use nvmx_units::BitsPerCell;
use std::io;
use std::path::{Path, PathBuf};

/// First bytes of every slab file.
pub const STORE_MAGIC: [u8; 8] = *b"NVMXSTOR";

/// The store codec version stamped after the magic. Decoders reject any
/// other value ([`StoreError::Version`]) instead of guessing — a version
/// skew degrades to recompute.
pub const STORE_VERSION: u32 = 1;

/// Segment tag for the cell-identity segment (exactly one per slab,
/// first).
const TAG_CELL: u8 = 1;
/// Segment tag for one characterized geometry slot.
const TAG_SLOT: u8 = 2;

/// Encoded size of one [`Subarray`]: rows/cols/mux (u64 each), the depth
/// byte, eleven `f64` bit patterns, and `bits_per_access`.
const SUBARRAY_BYTES: usize = 3 * 8 + 1 + 11 * 8 + 8;

/// Why a slab failed to load. Every variant degrades to recomputation in
/// the cache layer; none can ever surface wrong physics.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem failed (other than a missing slab, which
    /// is a plain miss, not an error).
    Io(io::Error),
    /// The slab declared a codec version this reader does not speak.
    Version {
        /// The version the header declared.
        found: u32,
    },
    /// The slab ended mid-structure (short header, short segment, or fewer
    /// slot segments than the header promised).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The slab bytes are structurally invalid: bad magic, checksum
    /// mismatch, unknown tag, malformed payload, or a geometry that
    /// disagrees with its slot index.
    Corrupt {
        /// What was wrong.
        reason: String,
    },
    /// The slab's stored cell is not the requesting cell: a 64-bit
    /// fingerprint collision (or a foreign file planted at the key's
    /// path). The requester recomputes rather than load foreign physics.
    Collision,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::Version { found } => write!(
                f,
                "slab declares store version {found}, this reader speaks {STORE_VERSION}"
            ),
            Self::Truncated { context } => write!(f, "slab truncated while reading {context}"),
            Self::Corrupt { reason } => write!(f, "corrupt slab: {reason}"),
            Self::Collision => write!(f, "slab cell does not match the requesting cell"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

fn corrupt(reason: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        reason: reason.into(),
    }
}

/// FNV-1a over a byte slice — the same hash family as
/// [`CellDefinition::fingerprint`], applied here per segment payload.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn depth_byte(bits_per_cell: BitsPerCell) -> u8 {
    match bits_per_cell {
        BitsPerCell::Slc => 0,
        BitsPerCell::Mlc2 => 1,
        BitsPerCell::Mlc3 => 2,
    }
}

fn depth_from_byte(byte: u8) -> Result<BitsPerCell, StoreError> {
    match byte {
        0 => Ok(BitsPerCell::Slc),
        1 => Ok(BitsPerCell::Mlc2),
        2 => Ok(BitsPerCell::Mlc3),
        other => Err(corrupt(format!("unknown programming-depth byte {other}"))),
    }
}

/// The canonical byte form of a cell for storage and verification: its
/// JSON serialization. Two [`CellDefinition`]s serialize identically iff
/// they are equal (the encoding is lossless, infinities included), so
/// comparing canonical bytes on load is exactly the in-memory cache's
/// `slab.cell == *cell` collision check — without trusting the stored
/// bytes enough to deserialize them.
pub fn canonical_cell_json(cell: &CellDefinition) -> String {
    serde_json::to_string(cell).expect("cell definitions always serialize")
}

// --------------------------------------------------------------- encoding

fn push_segment(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    out.extend(
        u32::try_from(payload.len())
            .expect("segment payloads are small")
            .to_le_bytes(),
    );
    out.extend(payload);
    out.extend(fnv1a(payload).to_le_bytes());
}

fn encode_subarray(payload: &mut Vec<u8>, subarray: &Subarray) {
    payload.extend((subarray.rows as u64).to_le_bytes());
    payload.extend((subarray.cols as u64).to_le_bytes());
    payload.extend((subarray.mux as u64).to_le_bytes());
    payload.push(depth_byte(subarray.bits_per_cell));
    for float in [
        subarray.array_width,
        subarray.array_height,
        subarray.width,
        subarray.height,
        subarray.read_latency,
        subarray.write_latency,
        subarray.read_cycle,
        subarray.write_cycle,
        subarray.read_energy,
        subarray.write_energy,
        subarray.leakage,
    ] {
        payload.extend(float.to_bits().to_le_bytes());
    }
    payload.extend(subarray.bits_per_access.to_le_bytes());
}

/// Encodes one slab: the cell-identity segment followed by one segment per
/// characterized slot. `slots` pairs each DSE-grid slot index with its
/// characterization.
pub fn encode_slab(
    cell_json: &str,
    node_bits: u64,
    bits_per_cell: BitsPerCell,
    slots: &[(usize, Subarray)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        STORE_MAGIC.len() + 8 + cell_json.len() + 32 + slots.len() * (SUBARRAY_BYTES + 17),
    );
    out.extend(STORE_MAGIC);
    out.extend(STORE_VERSION.to_le_bytes());
    out.extend(
        u32::try_from(slots.len())
            .expect("slot counts fit the DSE grid")
            .to_le_bytes(),
    );
    let mut cell_payload = Vec::with_capacity(9 + cell_json.len());
    cell_payload.extend(node_bits.to_le_bytes());
    cell_payload.push(depth_byte(bits_per_cell));
    cell_payload.extend(cell_json.as_bytes());
    push_segment(&mut out, TAG_CELL, &cell_payload);
    for (slot, subarray) in slots {
        let mut payload = Vec::with_capacity(4 + SUBARRAY_BYTES);
        payload.extend(
            u32::try_from(*slot)
                .expect("slot indices fit the DSE grid")
                .to_le_bytes(),
        );
        encode_subarray(&mut payload, subarray);
        push_segment(&mut out, TAG_SLOT, &payload);
    }
    out
}

// --------------------------------------------------------------- decoding

/// A strict little-endian cursor over slab bytes; every short read is a
/// typed [`StoreError::Truncated`].
struct Cursor<'b> {
    bytes: &'b [u8],
}

impl<'b> Cursor<'b> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'b [u8], StoreError> {
        if self.bytes.len() < n {
            return Err(StoreError::Truncated { context });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Reads one checksummed segment, verifying the trailing FNV-1a.
fn read_segment<'b>(cursor: &mut Cursor<'b>) -> Result<(u8, &'b [u8]), StoreError> {
    let tag = cursor.u8("segment tag")?;
    let len = cursor.u32("segment length")? as usize;
    let payload = cursor.take(len, "segment payload")?;
    let checksum = cursor.u64("segment checksum")?;
    if checksum != fnv1a(payload) {
        return Err(corrupt(format!("segment checksum mismatch (tag {tag})")));
    }
    Ok((tag, payload))
}

fn decode_subarray(cursor: &mut Cursor<'_>) -> Result<Subarray, StoreError> {
    let rows = cursor.u64("subarray rows")? as usize;
    let cols = cursor.u64("subarray cols")? as usize;
    let mux = cursor.u64("subarray mux")? as usize;
    let bits_per_cell = depth_from_byte(cursor.u8("subarray depth")?)?;
    Ok(Subarray {
        rows,
        cols,
        mux,
        bits_per_cell,
        array_width: cursor.f64("array_width")?,
        array_height: cursor.f64("array_height")?,
        width: cursor.f64("width")?,
        height: cursor.f64("height")?,
        read_latency: cursor.f64("read_latency")?,
        write_latency: cursor.f64("write_latency")?,
        read_cycle: cursor.f64("read_cycle")?,
        write_cycle: cursor.f64("write_cycle")?,
        read_energy: cursor.f64("read_energy")?,
        write_energy: cursor.f64("write_energy")?,
        leakage: cursor.f64("leakage")?,
        bits_per_access: cursor.u64("bits_per_access")?,
    })
}

/// Decodes a slab, verifying magic, version, checksums, the promised slot
/// count, and — against the *requesting* key — the node bits, programming
/// depth, and canonical cell bytes.
///
/// # Errors
///
/// [`StoreError::Version`] on a version skew, [`StoreError::Truncated`] on
/// short data, [`StoreError::Corrupt`] on structural damage, and
/// [`StoreError::Collision`] when the stored cell is not `cell_json`.
pub fn decode_slab(
    bytes: &[u8],
    node_bits: u64,
    bits_per_cell: BitsPerCell,
    cell_json: &str,
) -> Result<Vec<(usize, Subarray)>, StoreError> {
    let mut cursor = Cursor { bytes };
    let magic = cursor.take(STORE_MAGIC.len(), "magic")?;
    if magic != STORE_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = cursor.u32("version")?;
    if version != STORE_VERSION {
        return Err(StoreError::Version { found: version });
    }
    let promised = cursor.u32("slot count")? as usize;
    if promised > SLOTS {
        return Err(corrupt(format!(
            "slab promises {promised} slots, the DSE grid has {SLOTS}"
        )));
    }

    // Cell-identity segment: always first, exactly once.
    let (tag, payload) = read_segment(&mut cursor)?;
    if tag != TAG_CELL {
        return Err(corrupt(format!(
            "expected cell segment first, got tag {tag}"
        )));
    }
    let mut cell_cursor = Cursor { bytes: payload };
    let stored_node = cell_cursor.u64("cell segment node")?;
    let stored_depth = depth_from_byte(cell_cursor.u8("cell segment depth")?)?;
    let stored_cell = cell_cursor.bytes;
    if stored_node != node_bits
        || stored_depth != bits_per_cell
        || stored_cell != cell_json.as_bytes()
    {
        return Err(StoreError::Collision);
    }

    let mut slots = Vec::with_capacity(promised);
    let mut seen = [false; SLOTS];
    while !cursor.is_empty() {
        let (tag, payload) = read_segment(&mut cursor)?;
        if tag != TAG_SLOT {
            return Err(corrupt(format!("unexpected segment tag {tag}")));
        }
        let mut slot_cursor = Cursor { bytes: payload };
        let slot = slot_cursor.u32("slot index")? as usize;
        if slot >= SLOTS {
            return Err(corrupt(format!("slot index {slot} outside the DSE grid")));
        }
        if seen[slot] {
            return Err(corrupt(format!("slot {slot} stored twice")));
        }
        let subarray = decode_subarray(&mut slot_cursor)?;
        if !slot_cursor.is_empty() {
            return Err(corrupt("trailing bytes in slot segment"));
        }
        // The geometry must agree with the slot it claims, and with the
        // slab's depth — otherwise a warm hit would serve the wrong
        // geometry's physics.
        if crate::cache::slot_index(subarray.rows, subarray.cols, subarray.mux) != Some(slot) {
            return Err(corrupt(format!(
                "slot {slot} holds geometry {}x{}/{} which maps elsewhere",
                subarray.rows, subarray.cols, subarray.mux
            )));
        }
        if subarray.bits_per_cell != bits_per_cell {
            return Err(corrupt("slot depth disagrees with the slab depth"));
        }
        seen[slot] = true;
        slots.push((slot, subarray));
    }
    if slots.len() != promised {
        return Err(StoreError::Truncated {
            context: "slot segments (fewer than the header promised)",
        });
    }
    Ok(slots)
}

// ----------------------------------------------------------------- store

/// A directory of content-addressed characterization slabs — the on-disk
/// L2 layer opened by
/// [`SubarrayCache::with_store`](crate::cache::SubarrayCache::with_store).
///
/// Safe to share between concurrent processes: loads are plain reads of
/// immutable (write-once) files, and publishes go through atomic
/// temp+rename with process-unique temp names.
#[derive(Debug)]
pub struct CharacterizationStore {
    dir: PathBuf,
}

impl CharacterizationStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// When the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content-addressed path of one slab.
    pub fn slab_path(
        &self,
        fingerprint: u64,
        node_bits: u64,
        bits_per_cell: BitsPerCell,
    ) -> PathBuf {
        self.dir.join(format!(
            "{fingerprint:016x}-{node_bits:016x}-{}.slab",
            depth_byte(bits_per_cell)
        ))
    }

    /// Loads the slab for a cache key, verifying it against the requesting
    /// `cell`. `Ok(None)` is a plain miss (no slab published yet).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; callers degrade every variant to recomputation.
    pub fn load(
        &self,
        fingerprint: u64,
        node_bits: u64,
        bits_per_cell: BitsPerCell,
        cell: &CellDefinition,
    ) -> Result<Option<Vec<(usize, Subarray)>>, StoreError> {
        let path = self.slab_path(fingerprint, node_bits, bits_per_cell);
        let bytes = match std::fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            other => other?,
        };
        decode_slab(&bytes, node_bits, bits_per_cell, &canonical_cell_json(cell)).map(Some)
    }

    /// Publishes one slab, write-once: returns `false` without touching
    /// the store when a slab already exists at the key (characterization
    /// is deterministic, so whatever is there is as good as what we would
    /// write; a hostile file there will be rejected at load time instead).
    ///
    /// # Errors
    ///
    /// Any I/O failure from the atomic write; the store is left without a
    /// torn slab in every case.
    pub fn publish(
        &self,
        fingerprint: u64,
        node_bits: u64,
        bits_per_cell: BitsPerCell,
        cell: &CellDefinition,
        slots: &[(usize, Subarray)],
    ) -> io::Result<bool> {
        let path = self.slab_path(fingerprint, node_bits, bits_per_cell);
        if path.exists() {
            return Ok(false);
        }
        let bytes = encode_slab(&canonical_cell_json(cell), node_bits, bits_per_cell, slots);
        write_file_atomic(&path, &bytes)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::Meters;
    use proptest::prelude::*;

    fn stt() -> CellDefinition {
        tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap()
    }

    fn sample_slots(cell: &CellDefinition) -> Vec<(usize, Subarray)> {
        let tech = lookup(Meters::from_nano(22.0));
        [(512usize, 1024usize, 4usize), (1024, 2048, 8)]
            .into_iter()
            .map(|(rows, cols, mux)| {
                let slot = crate::cache::slot_index(rows, cols, mux).unwrap();
                let sub = Subarray::characterize(&tech, cell, rows, cols, mux, BitsPerCell::Slc);
                (slot, sub)
            })
            .collect()
    }

    #[test]
    fn encode_decode_is_bit_identical() {
        let cell = stt();
        let json = canonical_cell_json(&cell);
        let slots = sample_slots(&cell);
        let bytes = encode_slab(&json, 42, BitsPerCell::Slc, &slots);
        let back = decode_slab(&bytes, 42, BitsPerCell::Slc, &json).unwrap();
        assert_eq!(back, slots);
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let cell = stt();
        let json = canonical_cell_json(&cell);
        let mut bytes = encode_slab(&json, 42, BitsPerCell::Slc, &sample_slots(&cell));
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_slab(&bytes, 42, BitsPerCell::Slc, &json),
            Err(StoreError::Version { found: 99 })
        ));
    }

    #[test]
    fn foreign_cell_is_a_collision() {
        let stt = stt();
        let rram = tentpole::tentpole_cell(TechnologyClass::Rram, CellFlavor::Optimistic).unwrap();
        let bytes = encode_slab(
            &canonical_cell_json(&rram),
            42,
            BitsPerCell::Slc,
            &sample_slots(&rram),
        );
        assert!(matches!(
            decode_slab(&bytes, 42, BitsPerCell::Slc, &canonical_cell_json(&stt)),
            Err(StoreError::Collision)
        ));
    }

    #[test]
    fn store_roundtrips_through_real_files() {
        let dir = std::env::temp_dir().join(format!("nvmx_store_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CharacterizationStore::open(&dir).unwrap();
        let cell = stt();
        let fp = cell.fingerprint();
        let slots = sample_slots(&cell);
        assert_eq!(store.load(fp, 42, BitsPerCell::Slc, &cell).unwrap(), None);
        assert!(store
            .publish(fp, 42, BitsPerCell::Slc, &cell, &slots)
            .unwrap());
        assert!(
            !store
                .publish(fp, 42, BitsPerCell::Slc, &cell, &slots)
                .unwrap(),
            "publication is write-once"
        );
        assert_eq!(
            store.load(fp, 42, BitsPerCell::Slc, &cell).unwrap(),
            Some(slots)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        /// Any single flipped byte anywhere in a slab is detected: decode
        /// returns an error (or, for a byte in an f64 payload that the
        /// checksum catches, never a silently different value).
        #[test]
        fn any_flipped_byte_is_rejected(index in 0usize..4096, flip in 1u8..=255) {
            let cell = stt();
            let json = canonical_cell_json(&cell);
            let slots = sample_slots(&cell);
            let mut bytes = encode_slab(&json, 42, BitsPerCell::Slc, &slots);
            let index = index % bytes.len();
            bytes[index] ^= flip;
            match decode_slab(&bytes, 42, BitsPerCell::Slc, &json) {
                Err(_) => {}
                Ok(decoded) => {
                    // The only accepted mutations are ones that decode back
                    // to the exact original content (impossible for a real
                    // flip, but proptest demands we state the invariant).
                    prop_assert_eq!(decoded, slots);
                }
            }
        }

        /// Truncation at any length is a typed error, never partial data.
        #[test]
        fn any_truncation_is_rejected(cut in 0usize..4096) {
            let cell = stt();
            let json = canonical_cell_json(&cell);
            let slots = sample_slots(&cell);
            let bytes = encode_slab(&json, 42, BitsPerCell::Slc, &slots);
            let cut = cut % bytes.len();
            prop_assert!(decode_slab(&bytes[..cut], 42, BitsPerCell::Slc, &json).is_err());
        }
    }
}
