//! Sweep-wide memoization of subarray characterizations.
//!
//! [`crate::subarray::Subarray::characterize`] depends only on the
//! technology node, the cell, the subarray geometry, and the programming
//! depth — **not** on the array capacity, word width, or optimization
//! target. A multi-capacity study therefore re-derives the same ~150
//! subarray geometries for every `(cell, capacity)` job; this module
//! computes each unique geometry once per study and shares it across every
//! job that needs it.
//!
//! # Layout
//!
//! The cache is two-level, exploiting the fact that the DSE geometry space
//! is a small fixed grid (the `dse` module's `ROW_CHOICES` ×
//! `COL_CHOICES` × `MUX_CHOICES`):
//!
//! 1. an outer read-mostly map `(cell fingerprint, node, depth) →` slab,
//!    consulted **once per design-space pass** (via [`SubarrayCache::
//!    session`]), and
//! 2. an inner *slab*: a fixed array of [`OnceLock`]-slotted geometries,
//!    so the per-candidate hot path is an index computation plus one
//!    acquire load — no hashing, no locks, no contention under the sweep
//!    engine's atomic-index fan-out.
//!
//! Characterization is deterministic, so racing workers that miss the same
//! slot initialize it with bit-identical values ([`OnceLock`] keeps the
//! first); results never depend on thread interleaving. Geometries off the
//! DSE grid are characterized directly (counted as misses, never stored) —
//! correctness does not require the grid, it is purely a fast path.

use crate::dse::{COL_CHOICES, MUX_CHOICES, ROW_CHOICES};
use crate::store::CharacterizationStore;
use crate::subarray::Subarray;
use crate::technology::TechnologyParams;
use nvmx_celldb::CellDefinition;
use nvmx_units::BitsPerCell;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Slots in one geometry slab: the full DSE grid.
pub(crate) const SLOTS: usize = ROW_CHOICES.len() * COL_CHOICES.len() * MUX_CHOICES.len();

/// Slab slot of a geometry given its *indices* into the DSE choice arrays.
/// The enumeration pass computes this for free; [`slot_index`] recovers it
/// from raw dimensions for ad-hoc callers.
pub(crate) fn grid_slot(row_idx: usize, col_idx: usize, mux_idx: usize) -> usize {
    (row_idx * COL_CHOICES.len() + col_idx) * MUX_CHOICES.len() + mux_idx
}

/// Slab slot for a grid geometry, or `None` for off-grid requests.
pub(crate) fn slot_index(rows: usize, cols: usize, mux: usize) -> Option<usize> {
    let r = ROW_CHOICES.iter().position(|&x| x == rows)?;
    let c = COL_CHOICES.iter().position(|&x| x == cols)?;
    let m = MUX_CHOICES.iter().position(|&x| x == mux)?;
    Some(grid_slot(r, c, m))
}

/// Everything besides geometry that [`Subarray::characterize`] reads, as a
/// hashable key. The cell is identified by
/// [`CellDefinition::fingerprint`] and the node by the feature-size bit
/// pattern. Fingerprints are 64-bit hashes, so [`SubarrayCache::session`]
/// additionally verifies the slab's stored cell against the requesting one
/// — a collision degrades to uncached characterization, never to another
/// cell's physics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SlabKey {
    cell: u64,
    node_bits: u64,
    bits_per_cell: BitsPerCell,
}

/// One `(cell, node, depth)`'s memoized geometry grid. The owning cell is
/// stored so sessions can prove the fingerprint key really resolved to
/// their cell.
struct Slab {
    cell: CellDefinition,
    slots: [OnceLock<Subarray>; SLOTS],
}

impl Slab {
    fn new(cell: CellDefinition) -> Self {
        Self {
            cell,
            slots: std::array::from_fn(|_| OnceLock::new()),
        }
    }
}

/// The [`CacheStats::l2_rejects`] total broken out by
/// [`StoreError`](crate::store::StoreError) class — one counter per reason
/// the strict store codec refused a slab. Version skew dominating the
/// breakdown means a mixed-version fleet shares one store directory;
/// corruption/truncation point at the disk; collisions are the expected
/// (rare) 64-bit fingerprint accidents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2RejectClasses {
    /// Rejections by filesystem failure (other than a missing slab, which
    /// is a plain `l2_miss`).
    pub io: u64,
    /// Rejections by codec version skew (a slab written by a different
    /// `STORE_VERSION`).
    pub version: u64,
    /// Rejections by truncated slab files.
    pub truncated: u64,
    /// Rejections by failed checksums / malformed payloads.
    pub corrupt: u64,
    /// Rejections by fingerprint collision (the slab belongs to a
    /// different cell than the one requesting it).
    pub collision: u64,
}

impl L2RejectClasses {
    /// Sum of all classes — equals [`CacheStats::l2_rejects`] up to the
    /// usual observational counter races.
    pub fn total(&self) -> u64 {
        self.io + self.version + self.truncated + self.corrupt + self.collision
    }

    /// Per-class counters accumulated since an `earlier` snapshot
    /// (saturating, like [`CacheStats::since`]).
    pub fn since(&self, earlier: Self) -> Self {
        Self {
            io: self.io.saturating_sub(earlier.io),
            version: self.version.saturating_sub(earlier.version),
            truncated: self.truncated.saturating_sub(earlier.truncated),
            corrupt: self.corrupt.saturating_sub(earlier.corrupt),
            collision: self.collision.saturating_sub(earlier.collision),
        }
    }
}

/// Hit/miss/prune counters of a [`SubarrayCache`], captured by
/// [`SubarrayCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran a fresh characterization.
    pub misses: u64,
    /// DSE candidates skipped by branch-and-bound pruning before reaching
    /// the cache — a pruned candidate neither hits nor populates a slot.
    /// Per design-space pass, `hits + misses + pruned` equals the number of
    /// enumerated candidates.
    pub pruned: u64,
    /// Slab misses served by the on-disk L2 store (one per slab, not per
    /// geometry — a single L2 hit warms up to a full DSE grid of slots).
    pub l2_hits: u64,
    /// Slab misses the L2 store could not serve (no slab published yet).
    pub l2_misses: u64,
    /// L2 loads rejected by the strict codec — version skew, corruption,
    /// truncation, fingerprint collision, or I/O failure — all degraded to
    /// recomputation.
    pub l2_rejects: u64,
    /// The [`Self::l2_rejects`] total broken out by
    /// [`StoreError`](crate::store::StoreError) class.
    pub l2_reject_classes: L2RejectClasses,
}

impl CacheStats {
    /// Total lookups (pruned candidates never look up).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Total DSE candidates scanned: lookups plus pruned skips.
    pub fn candidates(&self) -> u64 {
        self.hits + self.misses + self.pruned
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / lookups as f64
            }
        }
    }

    /// Fraction of scanned candidates skipped by branch-and-bound pruning
    /// (0 when nothing was scanned).
    pub fn prune_rate(&self) -> f64 {
        let candidates = self.candidates();
        if candidates == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.pruned as f64 / candidates as f64
            }
        }
    }

    /// Counters accumulated since an `earlier` snapshot of the same cache —
    /// the per-study view a scheduler slot reports when several studies
    /// share one warm cache. Saturating, so a stale/foreign snapshot never
    /// panics (it just clamps to zero).
    pub fn since(&self, earlier: Self) -> Self {
        Self {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            pruned: self.pruned.saturating_sub(earlier.pruned),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            l2_rejects: self.l2_rejects.saturating_sub(earlier.l2_rejects),
            l2_reject_classes: self.l2_reject_classes.since(earlier.l2_reject_classes),
        }
    }
}

/// A sweep-wide, thread-safe memo of subarray characterizations.
///
/// Create one per study (or share one across studies — keys are globally
/// unambiguous) and thread it through
/// [`characterize_targets_cached`](crate::characterize_targets_cached).
/// Cached and uncached runs produce bit-identical results; only the work is
/// shared, never approximated.
pub struct SubarrayCache {
    slabs: RwLock<HashMap<SlabKey, Arc<Slab>>>,
    /// Optional on-disk L2: consulted on slab misses, published back by
    /// [`Self::flush_store`].
    store: Option<CharacterizationStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    pruned: AtomicU64,
    l2_hits: AtomicU64,
    l2_misses: AtomicU64,
    l2_rejects: AtomicU64,
    /// Per-class reject tallies, indexed like the rows of
    /// [`L2RejectClasses`]: io, version, truncated, corrupt, collision.
    l2_reject_by_class: [AtomicU64; 5],
}

impl Default for SubarrayCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SubarrayCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            slabs: RwLock::new(HashMap::new()),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
            l2_hits: AtomicU64::new(0),
            l2_misses: AtomicU64::new(0),
            l2_rejects: AtomicU64::new(0),
            l2_reject_by_class: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Creates an empty cache backed by the persistent characterization
    /// store at `dir` (created if absent). Slab misses consult the store
    /// before characterizing, and [`Self::flush_store`] publishes newly
    /// characterized slabs back — so a cold process against a warm store
    /// skips characterization entirely for every fingerprint it has seen
    /// before. Every store pathology (corruption, version skew, fingerprint
    /// collisions, I/O failure) degrades to recomputation; store-backed and
    /// storeless runs produce bit-identical results.
    ///
    /// # Errors
    ///
    /// When the store directory cannot be created.
    pub fn with_store(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let mut cache = Self::new();
        cache.store = Some(CharacterizationStore::open(dir)?);
        Ok(cache)
    }

    /// The backing persistent store, when one was attached.
    pub fn store(&self) -> Option<&CharacterizationStore> {
        self.store.as_ref()
    }

    /// Consults the L2 store for a slab missing from L1. Counter races
    /// (two threads loading the same slab) can double-count; totals are
    /// observability, not invariants — same contract as the L1 counters.
    fn store_lookup(&self, key: &SlabKey, cell: &CellDefinition) -> Option<Vec<(usize, Subarray)>> {
        let store = self.store.as_ref()?;
        match store.load(key.cell, key.node_bits, key.bits_per_cell, cell) {
            Ok(Some(slots)) => {
                self.l2_hits.fetch_add(1, Ordering::Relaxed);
                Some(slots)
            }
            Ok(None) => {
                self.l2_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(err) => {
                self.l2_rejects.fetch_add(1, Ordering::Relaxed);
                let class = match err {
                    crate::store::StoreError::Io(_) => 0,
                    crate::store::StoreError::Version { .. } => 1,
                    crate::store::StoreError::Truncated { .. } => 2,
                    crate::store::StoreError::Corrupt { .. } => 3,
                    crate::store::StoreError::Collision => 4,
                };
                self.l2_reject_by_class[class].fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes every slab holding at least one characterized geometry to
    /// the backing store (write-once: slabs already on disk are skipped).
    /// Returns the number of slabs newly published; a no-op `Ok(0)` without
    /// a store. Best-effort callers can ignore the result — the store is
    /// never left with a torn slab.
    ///
    /// # Errors
    ///
    /// The first I/O failure encountered while publishing.
    pub fn flush_store(&self) -> io::Result<usize> {
        let Some(store) = self.store.as_ref() else {
            return Ok(0);
        };
        let slabs: Vec<(SlabKey, Arc<Slab>)> = self
            .slabs
            .read()
            .expect("cache poisoned")
            .iter()
            .map(|(key, slab)| (*key, Arc::clone(slab)))
            .collect();
        let mut published = 0;
        for (key, slab) in slabs {
            let slots: Vec<(usize, Subarray)> = slab
                .slots
                .iter()
                .enumerate()
                .filter_map(|(index, slot)| slot.get().map(|sub| (index, sub.clone())))
                .collect();
            if slots.is_empty() {
                continue;
            }
            if store.publish(
                key.cell,
                key.node_bits,
                key.bits_per_cell,
                &slab.cell,
                &slots,
            )? {
                published += 1;
            }
        }
        Ok(published)
    }

    /// Opens the slab for `(cell, node, depth)` — the one outer-map access
    /// of a design-space pass; every per-candidate lookup then goes through
    /// the returned [`SubarraySession`] lock-free. The session binds the
    /// cell, technology, and depth, so lookups cannot mix inputs and
    /// poison the slab.
    pub fn session<'a>(
        &self,
        cell: &'a CellDefinition,
        tech: &'a TechnologyParams,
        bits_per_cell: BitsPerCell,
    ) -> SubarraySession<'_, 'a> {
        let key = SlabKey {
            cell: cell.fingerprint(),
            node_bits: tech.feature_size.value().to_bits(),
            bits_per_cell,
        };
        // Probe under the read lock and *drop the guard* before any write
        // acquisition — the scrutinee temporary of an `if let`/`match`
        // would otherwise live through the miss arm and self-deadlock.
        let probed = self
            .slabs
            .read()
            .expect("cache poisoned")
            .get(&key)
            .map(Arc::clone);
        let slab = match probed {
            Some(slab) => slab,
            None => {
                // L1 slab miss: consult the on-disk L2 *before* taking the
                // write lock (disk reads must not serialize other threads).
                // If a racing thread inserts first, the loaded slots are
                // discarded — the entry it made is equivalent.
                let loaded = self.store_lookup(&key, cell);
                Arc::clone(
                    self.slabs
                        .write()
                        .expect("cache poisoned")
                        .entry(key)
                        .or_insert_with(|| {
                            let slab = Slab::new(cell.clone());
                            for (index, subarray) in loaded.into_iter().flatten() {
                                // Indices were validated (< SLOTS) by the
                                // store codec.
                                let _ = slab.slots[index].set(subarray);
                            }
                            Arc::new(slab)
                        }),
                )
            }
        };
        // Fingerprints are 64-bit hashes: prove the slab belongs to this
        // cell. A collision (or a racing insert by a colliding cell)
        // degrades to uncached characterization — never to another cell's
        // physics.
        let slab = (slab.cell == *cell).then_some(slab);
        SubarraySession {
            cache: self,
            slab,
            cell,
            tech,
            bits_per_cell,
            hits: 0,
            misses: 0,
            pruned: 0,
        }
    }

    /// Hit/miss counters of every **dropped** session (live sessions batch
    /// their counts locally and flush on drop, keeping atomics off the
    /// per-candidate path). A racing double-miss on one slot may be counted
    /// twice even though only one value is stored — totals are for
    /// observability, not invariants.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            l2_hits: self.l2_hits.load(Ordering::Relaxed),
            l2_misses: self.l2_misses.load(Ordering::Relaxed),
            l2_rejects: self.l2_rejects.load(Ordering::Relaxed),
            l2_reject_classes: L2RejectClasses {
                io: self.l2_reject_by_class[0].load(Ordering::Relaxed),
                version: self.l2_reject_by_class[1].load(Ordering::Relaxed),
                truncated: self.l2_reject_by_class[2].load(Ordering::Relaxed),
                corrupt: self.l2_reject_by_class[3].load(Ordering::Relaxed),
                collision: self.l2_reject_by_class[4].load(Ordering::Relaxed),
            },
        }
    }

    /// Number of distinct geometries memoized.
    pub fn len(&self) -> usize {
        self.slabs
            .read()
            .expect("cache poisoned")
            .values()
            .map(|slab| {
                slab.slots
                    .iter()
                    .filter(|slot| slot.get().is_some())
                    .count()
            })
            .sum()
    }

    /// `true` when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for SubarrayCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SubarrayCache")
            .field("entries", &self.len())
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

/// A per-pass handle onto one `(cell, node, depth)` slab of a
/// [`SubarrayCache`]. Obtained from [`SubarrayCache::session`], which binds
/// the cell, technology, and depth — per-geometry lookups only supply the
/// geometry, so a session cannot store one cell's physics under another's
/// key.
///
/// Hit/miss counts accumulate locally and flush to the owning cache when
/// the session drops.
pub struct SubarraySession<'c, 'a> {
    cache: &'c SubarrayCache,
    /// `None` when the fingerprint key collided with a different cell's
    /// slab — every lookup then characterizes directly.
    slab: Option<Arc<Slab>>,
    cell: &'a CellDefinition,
    tech: &'a TechnologyParams,
    bits_per_cell: BitsPerCell,
    hits: u64,
    misses: u64,
    pruned: u64,
}

impl SubarraySession<'_, '_> {
    /// Records one branch-and-bound prune: a DSE candidate whose score
    /// bound proved it cannot win, skipped before any cache lookup. Pruned
    /// candidates neither hit nor populate the cache; they are tallied so
    /// `hits + misses + pruned` accounts for every scanned candidate.
    pub fn note_pruned(&mut self) {
        self.pruned += 1;
    }

    /// Returns the memoized characterization of the geometry, running (and
    /// recording) it on first sight. Geometries outside the DSE grid are
    /// characterized directly and not stored.
    pub fn get_or_characterize(&mut self, rows: usize, cols: usize, mux: usize) -> Subarray {
        self.lookup(slot_index(rows, cols, mux), rows, cols, mux)
    }

    /// [`Self::get_or_characterize`] with the slab slot already known (the
    /// DSE enumeration derives it for free from its loop indices).
    pub(crate) fn lookup(
        &mut self,
        slot: Option<usize>,
        rows: usize,
        cols: usize,
        mux: usize,
    ) -> Subarray {
        let (Some(slab), Some(index)) = (&self.slab, slot) else {
            self.misses += 1;
            return Subarray::characterize(
                self.tech,
                self.cell,
                rows,
                cols,
                mux,
                self.bits_per_cell,
            );
        };
        let slot = &slab.slots[index];
        if let Some(hit) = slot.get() {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        slot.get_or_init(|| {
            Subarray::characterize(self.tech, self.cell, rows, cols, mux, self.bits_per_cell)
        })
        .clone()
    }
}

impl Drop for SubarraySession<'_, '_> {
    fn drop(&mut self) {
        if self.hits > 0 {
            self.cache.hits.fetch_add(self.hits, Ordering::Relaxed);
        }
        if self.misses > 0 {
            self.cache.misses.fetch_add(self.misses, Ordering::Relaxed);
        }
        if self.pruned > 0 {
            self.cache.pruned.fetch_add(self.pruned, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::Meters;

    fn stt() -> CellDefinition {
        tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap()
    }

    #[test]
    fn cached_result_is_bit_identical_to_direct_characterization() {
        let tech = lookup(Meters::from_nano(22.0));
        let cell = stt();
        let cache = SubarrayCache::new();
        let direct = Subarray::characterize(&tech, &cell, 512, 1024, 4, BitsPerCell::Slc);
        let mut session = cache.session(&cell, &tech, BitsPerCell::Slc);
        let cold = session.get_or_characterize(512, 1024, 4);
        let warm = session.get_or_characterize(512, 1024, 4);
        drop(session); // flush counters
        assert_eq!(direct, cold);
        assert_eq!(direct, warm);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn sessions_share_memoized_geometries() {
        let tech = lookup(Meters::from_nano(22.0));
        let cell = stt();
        let cache = SubarrayCache::new();
        cache
            .session(&cell, &tech, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        // A second session — e.g. the same cell at another capacity — sees
        // the slab warm.
        cache
            .session(&cell, &tech, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn distinct_geometries_cells_and_depths_get_distinct_entries() {
        let tech = lookup(Meters::from_nano(22.0));
        let stt = stt();
        let rram = tentpole::tentpole_cell(TechnologyClass::Rram, CellFlavor::Optimistic).unwrap();
        let cache = SubarrayCache::new();
        for (cell, rows, bpc) in [
            (&stt, 512usize, BitsPerCell::Slc),
            (&stt, 1024, BitsPerCell::Slc),
            (&stt, 512, BitsPerCell::Mlc2),
            (&rram, 512, BitsPerCell::Slc),
        ] {
            cache
                .session(cell, &tech, bpc)
                .get_or_characterize(rows, 1024, 4);
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn node_is_part_of_the_key() {
        let cell = stt();
        let cache = SubarrayCache::new();
        let t22 = lookup(Meters::from_nano(22.0));
        let t16 = lookup(Meters::from_nano(16.0));
        let a = cache
            .session(&cell, &t22, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        let b = cache
            .session(&cell, &t16, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        assert_ne!(a, b, "different nodes must not share an entry");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn off_grid_geometries_fall_through_without_storing() {
        let tech = lookup(Meters::from_nano(22.0));
        let cell = stt();
        let cache = SubarrayCache::new();
        let mut session = cache.session(&cell, &tech, BitsPerCell::Slc);
        let direct = Subarray::characterize(&tech, &cell, 100, 100, 4, BitsPerCell::Slc);
        let via_cache = session.get_or_characterize(100, 100, 4);
        drop(session); // flush counters
        assert_eq!(direct, via_cache);
        assert!(cache.is_empty(), "off-grid results are never stored");
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn fingerprint_collision_degrades_to_uncached_not_wrong_physics() {
        let tech = lookup(Meters::from_nano(22.0));
        let stt = stt();
        let rram = tentpole::tentpole_cell(TechnologyClass::Rram, CellFlavor::Optimistic).unwrap();
        let cache = SubarrayCache::new();
        // Simulate a 64-bit fingerprint collision: plant the RRAM cell's
        // slab (pre-warmed with RRAM physics) under the STT cell's key.
        let planted = Slab::new(rram.clone());
        planted.slots[slot_index(512, 1024, 4).unwrap()]
            .set(Subarray::characterize(
                &tech,
                &rram,
                512,
                1024,
                4,
                BitsPerCell::Slc,
            ))
            .unwrap();
        let key = SlabKey {
            cell: stt.fingerprint(),
            node_bits: tech.feature_size.value().to_bits(),
            bits_per_cell: BitsPerCell::Slc,
        };
        cache.slabs.write().unwrap().insert(key, Arc::new(planted));

        let mut session = cache.session(&stt, &tech, BitsPerCell::Slc);
        let got = session.get_or_characterize(512, 1024, 4);
        drop(session);
        let expected = Subarray::characterize(&tech, &stt, 512, 1024, 4, BitsPerCell::Slc);
        assert_eq!(got, expected, "collision must never serve foreign physics");
        assert_eq!(cache.stats().hits, 0, "collided session cannot hit");
    }

    #[test]
    fn cold_process_against_warm_store_skips_characterization() {
        let dir = std::env::temp_dir().join(format!("nvmx_cache_l2_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tech = lookup(Meters::from_nano(22.0));
        let cell = stt();

        // "Process" one: cold cache, cold store — characterizes and flushes.
        let first = SubarrayCache::with_store(&dir).unwrap();
        let a = first
            .session(&cell, &tech, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        assert_eq!(first.stats().l2_misses, 1, "cold store is a miss");
        assert_eq!(first.flush_store().unwrap(), 1);
        assert_eq!(first.flush_store().unwrap(), 0, "publication is write-once");

        // "Process" two: cold cache, warm store — loads instead of
        // characterizing, bit-identically.
        let second = SubarrayCache::with_store(&dir).unwrap();
        let mut session = second.session(&cell, &tech, BitsPerCell::Slc);
        let b = session.get_or_characterize(512, 1024, 4);
        drop(session);
        assert_eq!(a, b, "L2-loaded physics must be bit-identical");
        let stats = second.stats();
        assert_eq!(stats.l2_hits, 1);
        assert_eq!(stats.hits, 1, "the warmed slot serves as an L1 hit");
        assert_eq!(stats.misses, 0, "nothing re-characterized");

        // A corrupted store degrades to recompute with identical results.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
        }
        let third = SubarrayCache::with_store(&dir).unwrap();
        let c = third
            .session(&cell, &tech, BitsPerCell::Slc)
            .get_or_characterize(512, 1024, 4);
        assert_eq!(a, c, "corruption must degrade to recompute, not wrong data");
        assert_eq!(third.stats().l2_rejects, 1);
        let classes = third.stats().l2_reject_classes;
        assert_eq!(
            classes.total(),
            1,
            "every reject lands in exactly one class"
        );
        assert_eq!(
            classes.corrupt + classes.truncated,
            1,
            "a flipped byte is corruption"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_lookups_agree_with_serial() {
        let tech = lookup(Meters::from_nano(22.0));
        let cell = stt();
        let cache = SubarrayCache::new();
        let serial = Subarray::characterize(&tech, &cell, 1024, 2048, 8, BitsPerCell::Slc);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let mut session = cache.session(&cell, &tech, BitsPerCell::Slc);
                    for _ in 0..16 {
                        let got = session.get_or_characterize(1024, 2048, 8);
                        assert_eq!(got, serial);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().lookups(), 8 * 16);
    }
}
