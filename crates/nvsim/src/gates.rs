//! Gate-level delay and energy models: Horowitz approximation, logical-effort
//! buffer chains, and the decode path (NVSim/CACTI lineage).

use crate::technology::TechnologyParams;

/// Horowitz delay approximation for a gate with output time constant `tf`,
/// switching threshold `vs` (as a fraction of Vdd), and input rise time
/// `input_ramp` (seconds).
///
/// For a step input (`input_ramp == 0`) this degenerates to the familiar
/// `tf · √(ln²(vs))  = tf · |ln(vs)|`.
pub fn horowitz(input_ramp: f64, tf: f64, vs: f64) -> f64 {
    if tf <= 0.0 {
        return 0.0;
    }
    let a = input_ramp / tf;
    // beta = 1/(gain·vdd) ≈ 0.5 for typical static CMOS.
    let beta = 0.5;
    tf * (vs.ln().powi(2) + 2.0 * a * beta * (1.0 - vs)).sqrt()
}

/// An inverter/buffer stage sized `width_f` features of NMOS width
/// (PMOS assumed 2× for equal rise/fall).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// NMOS width in features.
    pub width_f: f64,
}

impl Stage {
    /// Input capacitance of this stage.
    pub fn c_in(&self, tech: &TechnologyParams) -> f64 {
        tech.gate_cap(self.width_f) + tech.gate_cap(2.0 * self.width_f) // n + p
    }

    /// Self-load (drain) capacitance.
    pub fn c_self(&self, tech: &TechnologyParams) -> f64 {
        tech.drain_cap(self.width_f) + tech.drain_cap(2.0 * self.width_f)
    }

    /// Pull-down resistance.
    pub fn r_out(&self, tech: &TechnologyParams) -> f64 {
        tech.r_on(self.width_f)
    }

    /// Leakage power of the stage.
    pub fn leak(&self, tech: &TechnologyParams) -> f64 {
        // Half the devices leak on average (one of n/p is off).
        tech.leak_power(1.5 * self.width_f)
    }
}

/// Result of driving a load through a sized buffer chain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DriveResult {
    /// Total propagation delay, seconds.
    pub delay: f64,
    /// Dynamic energy per transition, joules.
    pub energy: f64,
    /// Static leakage of the chain, watts.
    pub leakage: f64,
    /// Total transistor width of the chain in features (for area estimates).
    pub total_width_f: f64,
}

/// Sizes a fanout-of-4 buffer chain from a minimum-size input to drive
/// `c_load` (plus optional wire resistance `r_wire` in the last stage) and
/// returns its delay/energy/leakage at supply `v_swing`.
///
/// This is the workhorse for wordline drivers, predecoder buffers, mux
/// selects, and H-tree repeaters.
pub fn drive_load(tech: &TechnologyParams, c_load: f64, r_wire: f64, v_swing: f64) -> DriveResult {
    let c_min = Stage { width_f: 2.0 }.c_in(tech);
    let fanout: f64 = 4.0;
    let ratio = (c_load / c_min).max(1.0);
    let n_stages = (ratio.ln() / fanout.ln()).ceil().max(1.0) as usize;
    let per_stage_fanout = ratio.powf(1.0 / n_stages as f64);

    let mut delay = 0.0;
    let mut energy = 0.0;
    let mut leakage = 0.0;
    let mut total_width = 0.0;
    let mut width = 2.0; // minimum-size first stage
    let mut input_ramp = 0.0;

    for stage_idx in 0..n_stages {
        let stage = Stage { width_f: width };
        let next_width = width * per_stage_fanout;
        let c_next = if stage_idx + 1 == n_stages {
            c_load
        } else {
            Stage {
                width_f: next_width,
            }
            .c_in(tech)
        };
        let r_extra = if stage_idx + 1 == n_stages {
            r_wire
        } else {
            0.0
        };
        let tf = (stage.r_out(tech) + 0.5 * r_extra) * (stage.c_self(tech) + c_next);
        let stage_delay = horowitz(input_ramp, tf, 0.5);
        delay += stage_delay;
        input_ramp = stage_delay;
        energy += (stage.c_self(tech) + c_next) * v_swing * v_swing;
        leakage += stage.leak(tech);
        total_width += 3.0 * width; // n + p widths
        width = next_width;
    }

    DriveResult {
        delay,
        energy,
        leakage,
        total_width_f: total_width,
    }
}

/// Characterization of a row/column decoder for `n_outputs` outputs:
/// a predecode tree of 2-input gates followed by final drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decoder {
    /// Number of decoded outputs (e.g. rows).
    pub n_outputs: usize,
    /// Delay through predecode + final gate, before the output driver.
    pub delay: f64,
    /// Dynamic energy per decode operation.
    pub energy: f64,
    /// Leakage of the whole decoder.
    pub leakage: f64,
    /// Total device width in features (area proxy).
    pub total_width_f: f64,
}

impl Decoder {
    /// Builds a decoder for `n_outputs` outputs in technology `tech`.
    ///
    /// The model charges `log4(n)` logic levels of FO4 delay for the
    /// predecode tree, one active output path's dynamic energy, and leakage
    /// for all `n` final gates (they all leak whether selected or not).
    pub fn new(tech: &TechnologyParams, n_outputs: usize) -> Self {
        let n = n_outputs.max(2) as f64;
        let levels = (n.log2() / 2.0).ceil().max(1.0);
        let delay = levels * 1.4 * tech.fo4_delay;

        let vdd = tech.vdd.value();
        // Active path: one gate per level switching, each ~4 F wide.
        let c_level = Stage { width_f: 4.0 }.c_in(tech) + Stage { width_f: 4.0 }.c_self(tech);
        let energy = levels * c_level * vdd * vdd
            // Address lines span the decoder: n·(pitch) of wire switching.
            + 0.5 * n * 4.0 * tech.feature_size.value() * tech.wire_c_per_m * vdd * vdd;
        // All final-row NAND gates leak.
        let leakage = n * Stage { width_f: 4.0 }.leak(tech) * 0.5;
        let total_width_f = n * 12.0 + levels * 16.0;

        Self {
            n_outputs,
            delay,
            energy,
            leakage,
            total_width_f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_units::Meters;

    fn t22() -> TechnologyParams {
        lookup(Meters::from_nano(22.0))
    }

    #[test]
    fn horowitz_step_input_matches_closed_form() {
        let tf = 10.0e-12;
        let d = horowitz(0.0, tf, 0.5);
        assert!((d - tf * 0.5f64.ln().abs()).abs() < 1e-15);
    }

    #[test]
    fn horowitz_slow_input_increases_delay() {
        let tf = 10.0e-12;
        assert!(horowitz(20.0e-12, tf, 0.5) > horowitz(0.0, tf, 0.5));
    }

    #[test]
    fn horowitz_zero_tf_is_zero() {
        assert_eq!(horowitz(1e-12, 0.0, 0.5), 0.0);
    }

    #[test]
    fn drive_load_scales_with_load() {
        let tech = t22();
        let small = drive_load(&tech, 5.0e-15, 0.0, tech.vdd.value());
        let large = drive_load(&tech, 500.0e-15, 0.0, tech.vdd.value());
        assert!(large.delay > small.delay);
        assert!(large.energy > small.energy);
        assert!(large.total_width_f > small.total_width_f);
    }

    #[test]
    fn drive_load_delay_is_picosecond_scale() {
        let tech = t22();
        // 100 fF load (a long wordline) should take tens of ps, not ns.
        let r = drive_load(&tech, 100.0e-15, 1000.0, tech.vdd.value());
        assert!(r.delay > 1.0e-12 && r.delay < 1.0e-9, "delay {}", r.delay);
    }

    #[test]
    fn wire_resistance_slows_final_stage() {
        let tech = t22();
        let without = drive_load(&tech, 100.0e-15, 0.0, tech.vdd.value());
        let with = drive_load(&tech, 100.0e-15, 20.0e3, tech.vdd.value());
        assert!(with.delay > without.delay);
    }

    #[test]
    fn decoder_grows_with_outputs() {
        let tech = t22();
        let d256 = Decoder::new(&tech, 256);
        let d1024 = Decoder::new(&tech, 1024);
        assert!(d1024.delay >= d256.delay);
        assert!(d1024.leakage > d256.leakage);
        assert!(d1024.energy > d256.energy);
        // Decode of 1024 rows should still be sub-nanosecond at 22 nm.
        assert!(d1024.delay < 1.0e-9, "decode {}", d1024.delay);
    }

    #[test]
    fn energy_uses_swing_quadratically() {
        let tech = t22();
        let low = drive_load(&tech, 100.0e-15, 0.0, 0.5);
        let high = drive_load(&tech, 100.0e-15, 0.0, 1.0);
        assert!((high.energy / low.energy - 4.0).abs() < 0.01);
    }
}
