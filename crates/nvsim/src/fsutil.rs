//! Atomic file publication: sibling temp file + rename.
//!
//! Several artifact writers in the workspace (bench reports, campaign
//! CSVs, coordinator wire captures, and the on-disk characterization
//! store in [`crate::store`]) share one requirement: a killed process —
//! CI cancellation, OOM-kill, SIGKILL mid-write — must never leave a torn
//! file at the published path. Readers see either the previous complete
//! file or the new complete file, nothing in between.
//!
//! Both entry points implement the same protocol:
//!
//! 1. write everything into a hidden sibling temp file (same directory,
//!    because `rename` is only atomic within one filesystem),
//! 2. `rename` it over the target in one atomic step,
//! 3. on any failure, remove the temp file (best effort) and leave the
//!    target untouched.
//!
//! Temp names embed the process id **and** a per-process sequence number,
//! so concurrent writers — other processes racing to publish the *same*
//! target, or threads within one process — never tear each other's temp
//! files. When two writers race the same target, each publishes a complete
//! file and the last rename wins; callers that need write-once semantics
//! (the characterization store) simply skip publishing when the target
//! already exists.

use std::ffi::OsString;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers within one process; the process id
/// distinguishes writers across processes.
static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` via a sibling temp file plus an atomic
/// rename. The one-shot form of [`AtomicFileWriter`] for callers that
/// already hold the full artifact in memory.
///
/// # Errors
///
/// Any I/O failure from the write or the rename; on failure the temp file
/// is removed on a best-effort basis and `path` is untouched.
pub fn write_file_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let mut writer = AtomicFileWriter::create(path)?;
    writer.write_all(contents)?;
    writer.commit()
}

/// A streaming writer that publishes atomically on [`Self::commit`].
///
/// Bytes go to a hidden sibling temp file; `commit` renames it over the
/// target in one atomic step. Dropping the writer without committing (or
/// calling [`Self::discard`]) removes the temp file and leaves the target
/// untouched — exactly the abort semantics a coordinator needs when a
/// capture stream dies mid-study.
#[derive(Debug)]
pub struct AtomicFileWriter {
    /// `None` once committed or discarded.
    file: Option<File>,
    tmp: PathBuf,
    target: PathBuf,
}

impl AtomicFileWriter {
    /// Opens a temp sibling of `path` for writing.
    ///
    /// # Errors
    ///
    /// When `path` has no file name, or the temp file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::other(format!("`{}` has no file name", path.display())))?;
        let mut tmp_name = OsString::from(".");
        tmp_name.push(file_name);
        tmp_name.push(format!(
            ".{}.{}.tmp",
            std::process::id(),
            WRITER_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let tmp = path.with_file_name(tmp_name);
        let file = File::create(&tmp)?;
        Ok(Self {
            file: Some(file),
            tmp,
            target: path.to_path_buf(),
        })
    }

    /// The target path this writer will publish to.
    pub fn target(&self) -> &Path {
        &self.target
    }

    /// Flushes and atomically publishes the temp file over the target.
    ///
    /// # Errors
    ///
    /// Any I/O failure from the flush or the rename; on failure the temp
    /// file is removed on a best-effort basis and the target is untouched.
    pub fn commit(mut self) -> io::Result<()> {
        let mut file = self.file.take().expect("commit consumes the writer");
        let published = (|| {
            file.flush()?;
            drop(file);
            fs::rename(&self.tmp, &self.target)
        })();
        if published.is_err() {
            let _ = fs::remove_file(&self.tmp);
        }
        published
    }

    /// Abandons the write: removes the temp file, leaves the target
    /// untouched.
    pub fn discard(mut self) {
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

impl Write for AtomicFileWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.as_mut().expect("writer still open").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.as_mut().expect("writer still open").flush()
    }
}

impl Drop for AtomicFileWriter {
    fn drop(&mut self) {
        // Neither committed nor discarded: treat as an abort.
        if self.file.take().is_some() {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nvmx_fsutil_{tag}_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn one_shot_write_publishes_and_leaves_no_temp() {
        let dir = scratch_dir("oneshot");
        let target = dir.join("artifact.txt");
        write_file_atomic(&target, b"hello").unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"hello");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streaming_writer_publishes_on_commit_only() {
        let dir = scratch_dir("stream");
        let target = dir.join("capture.jsonl");
        let mut writer = AtomicFileWriter::create(&target).unwrap();
        writer.write_all(b"line 1\n").unwrap();
        assert!(!target.exists(), "target must not exist before commit");
        writer.write_all(b"line 2\n").unwrap();
        writer.commit().unwrap();
        assert_eq!(fs::read(&target).unwrap(), b"line 1\nline 2\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn discard_and_drop_leave_the_target_untouched() {
        let dir = scratch_dir("discard");
        let target = dir.join("kept.txt");
        fs::write(&target, b"previous").unwrap();
        let mut writer = AtomicFileWriter::create(&target).unwrap();
        writer.write_all(b"half-written").unwrap();
        writer.discard();
        assert_eq!(fs::read(&target).unwrap(), b"previous");
        let mut dropped = AtomicFileWriter::create(&target).unwrap();
        dropped.write_all(b"also half-written").unwrap();
        drop(dropped);
        assert_eq!(fs::read(&target).unwrap(), b"previous");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racing_writers_never_tear_each_other() {
        let dir = scratch_dir("race");
        let target = dir.join("contended.bin");
        std::thread::scope(|scope| {
            for i in 0u8..8 {
                let target = &target;
                scope.spawn(move || {
                    // Each writer publishes a self-consistent payload: 4 KiB
                    // of one repeated byte.
                    write_file_atomic(target, &[i; 4096]).unwrap();
                });
            }
        });
        let bytes = fs::read(&target).unwrap();
        assert_eq!(bytes.len(), 4096);
        assert!(
            bytes.iter().all(|b| *b == bytes[0]),
            "published file mixes writers"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
