//! Peripheral circuit components: sense amplifiers, prechargers, write
//! drivers. Each exposes delay / energy / leakage / area so the subarray
//! model can compose them.

use crate::technology::TechnologyParams;
use nvmx_celldb::SenseScheme;

/// A sense amplifier instance (one per active column after muxing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmp {
    /// Resolution delay once the input margin is developed, s.
    pub delay: f64,
    /// Energy per sense operation, J.
    pub energy: f64,
    /// Standby leakage, W.
    pub leakage: f64,
    /// Layout area, F².
    pub area_f2: f64,
}

impl SenseAmp {
    /// Builds the sense amp matching a cell's sensing scheme.
    pub fn new(tech: &TechnologyParams, scheme: SenseScheme) -> Self {
        let vdd = tech.vdd.value();
        let fo4 = tech.fo4_delay;
        // Latch-type SA internal cap ≈ 4 fF; current-mode adds a bias branch.
        match scheme {
            SenseScheme::VoltageDifferential => Self {
                delay: 2.0 * fo4,
                energy: 4.0e-15 * vdd * vdd / 0.81, // normalized to ~3 fJ at 0.9 V
                leakage: tech.leak_power(12.0),
                area_f2: 1200.0,
            },
            // Current-mode SAs keep a trickle bias (current mirror +
            // reference) for fast sensing; it dominates their standby power.
            SenseScheme::CurrentSense => Self {
                delay: 3.0 * fo4,
                energy: 8.0e-15 * vdd * vdd / 0.81,
                leakage: tech.leak_power(20.0) + 40.0e-9 * vdd,
                area_f2: 2000.0,
            },
            // FET-drain sensing is a simple voltage-mode latch on a big
            // swing: small and easy to power-gate.
            SenseScheme::FetSense => Self {
                delay: 3.0 * fo4,
                energy: 8.0e-15 * vdd * vdd / 0.81,
                leakage: tech.leak_power(6.0),
                area_f2: 1800.0,
            },
            SenseScheme::ChargeSense => Self {
                delay: 3.0 * fo4,
                energy: 6.0e-15 * vdd * vdd / 0.81,
                leakage: tech.leak_power(16.0),
                area_f2: 1600.0,
            },
        }
    }
}

/// Bitline precharge device (one per column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Precharger {
    /// Leakage per column, W.
    pub leakage: f64,
    /// Area per column, F².
    pub area_f2: f64,
}

impl Precharger {
    /// Builds a per-column precharger.
    pub fn new(tech: &TechnologyParams) -> Self {
        Self {
            leakage: tech.leak_power(3.0) * 0.5,
            area_f2: 120.0,
        }
    }
}

/// Write driver (one per active column), sized to source the cell's
/// programming current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteDriver {
    /// Driver setup delay before the programming pulse starts, s.
    pub delay: f64,
    /// Driver self-energy per write (excludes cell + bitline energy), J.
    pub energy: f64,
    /// Leakage per driver, W.
    pub leakage: f64,
    /// Area per driver, F².
    pub area_f2: f64,
    /// Supply conversion efficiency (1.0 when V_write ≤ Vdd; charge-pumped
    /// domains pay `1/efficiency` on every joule delivered to the cell).
    pub supply_efficiency: f64,
}

impl WriteDriver {
    /// Transistor drive current per feature of width (≈0.9 mA/µm class).
    fn drive_per_width_f(tech: &TechnologyParams) -> f64 {
        0.9e3 * tech.feature_size.value() // A per F of width
    }

    /// Builds a driver for programming current `i_cell` amps at `v_write`.
    pub fn new(tech: &TechnologyParams, i_cell: f64, v_write: f64) -> Self {
        let vdd = tech.vdd.value();
        let width_f = (i_cell / Self::drive_per_width_f(tech)).clamp(2.0, 400.0);
        let boosted = v_write > vdd;
        // Charge-pump transfer efficiency degrades with the boost ratio;
        // mild boosts (STT at 1.2 V off a 0.85 V rail) stay fairly
        // efficient, deep boosts (FeFET at 4 V) pay heavily.
        let supply_efficiency = if boosted {
            (0.9 * vdd / v_write).clamp(0.25, 0.9)
        } else {
            0.95
        };
        Self {
            delay: 2.0 * tech.fo4_delay,
            energy: tech.gate_cap(width_f * 3.0) * v_write * v_write,
            leakage: tech.leak_power(width_f) * 0.3,
            area_f2: 200.0 + 8.0 * width_f,
            supply_efficiency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_units::Meters;

    fn t22() -> TechnologyParams {
        lookup(Meters::from_nano(22.0))
    }

    #[test]
    fn current_sense_is_bigger_and_hungrier_than_voltage() {
        let tech = t22();
        let v = SenseAmp::new(&tech, SenseScheme::VoltageDifferential);
        let c = SenseAmp::new(&tech, SenseScheme::CurrentSense);
        assert!(c.energy > v.energy);
        assert!(c.area_f2 > v.area_f2);
        assert!(c.delay > v.delay);
    }

    #[test]
    fn sense_energy_is_femtojoule_scale() {
        let tech = t22();
        let sa = SenseAmp::new(&tech, SenseScheme::CurrentSense);
        assert!((1.0e-15..50.0e-15).contains(&sa.energy), "{}", sa.energy);
    }

    #[test]
    fn write_driver_sized_by_current() {
        let tech = t22();
        let small = WriteDriver::new(&tech, 10.0e-6, 1.0);
        let large = WriteDriver::new(&tech, 300.0e-6, 1.0);
        assert!(large.area_f2 > small.area_f2);
        assert!(large.leakage > small.leakage);
    }

    #[test]
    fn boosted_writes_pay_pump_efficiency() {
        let tech = t22();
        let nominal = WriteDriver::new(&tech, 50.0e-6, 0.8);
        let mild = WriteDriver::new(&tech, 50.0e-6, 1.2);
        let deep = WriteDriver::new(&tech, 50.0e-6, 4.0);
        assert!((nominal.supply_efficiency - 0.95).abs() < 1e-9);
        // Mild boost (STT-class): graded efficiency 0.9·vdd/v.
        assert!((mild.supply_efficiency - 0.9 * 0.85 / 1.2).abs() < 1e-9);
        // Deep boost (FeFET-class) clamps at the pump floor.
        assert!((deep.supply_efficiency - 0.25).abs() < 1e-9);
        assert!(deep.supply_efficiency < mild.supply_efficiency);
    }

    #[test]
    fn precharger_is_cheap() {
        let tech = t22();
        let p = Precharger::new(&tech);
        assert!(p.area_f2 < 200.0);
        assert!(p.leakage < 1.0e-7);
    }
}
