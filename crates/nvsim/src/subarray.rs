//! The subarray model: one contiguous grid of cells with its decoder,
//! sense amplifiers, prechargers, and write drivers.
//!
//! Everything an array-level result contains is ultimately produced here;
//! [`crate::bank`] only composes subarrays and adds H-tree routing.

use crate::components::{Precharger, SenseAmp, WriteDriver};
use crate::gates::{drive_load, Decoder};
use crate::technology::TechnologyParams;
use crate::wire::Wire;
use nvmx_celldb::{AccessDevice, CellDefinition, SenseScheme};
use nvmx_units::BitsPerCell;

/// Geometry + electrical characterization of one subarray.
#[derive(Debug, Clone, PartialEq)]
pub struct Subarray {
    /// Rows of cells (wordlines).
    pub rows: usize,
    /// Columns of cells (bitlines).
    pub cols: usize,
    /// Column-mux degree: `cols / mux` sense amps serve the subarray.
    pub mux: usize,
    /// Programming depth.
    pub bits_per_cell: BitsPerCell,
    /// Physical width, m (cell array only).
    pub array_width: f64,
    /// Physical height, m (cell array only).
    pub array_height: f64,
    /// Total width including the decoder strip, m.
    pub width: f64,
    /// Total height including SA/driver strips, m.
    pub height: f64,
    /// Read latency (address-in to data-latched), s.
    pub read_latency: f64,
    /// Write latency (address-in to cell programmed), s.
    pub write_latency: f64,
    /// Minimum interval between successive reads, s.
    pub read_cycle: f64,
    /// Minimum interval between successive writes, s.
    pub write_cycle: f64,
    /// Dynamic energy of one read access (all sensed columns), J.
    pub read_energy: f64,
    /// Dynamic energy of one write access (all driven columns), J.
    pub write_energy: f64,
    /// Standby leakage, W.
    pub leakage: f64,
    /// Logical bits delivered per read access.
    pub bits_per_access: u64,
}

/// Gate capacitance one cell presents to its wordline. Shared with
/// [`crate::bounds`] so the pruning bounds mirror the exact model.
pub(crate) fn access_gate_cap(tech: &TechnologyParams, cell: &CellDefinition) -> f64 {
    match cell.access {
        AccessDevice::CmosTransistor { width_f } => tech.gate_cap(width_f),
        AccessDevice::SelfSelecting => tech.gate_cap(2.0),
        AccessDevice::Selector => 0.02e-15,
    }
}

/// Drain capacitance one cell presents to its bitline. Shared with
/// [`crate::bounds`].
pub(crate) fn access_drain_cap(tech: &TechnologyParams, cell: &CellDefinition) -> f64 {
    match cell.access {
        AccessDevice::CmosTransistor { width_f } => tech.drain_cap(width_f),
        AccessDevice::SelfSelecting => tech.drain_cap(2.0),
        AccessDevice::Selector => 0.05e-15,
    }
}

/// Wordline read voltage: FET-sensed cells need the read bias on the gate;
/// everything else drives the wordline at Vdd. Shared with
/// [`crate::bounds`].
pub(crate) fn wordline_read_voltage(tech: &TechnologyParams, cell: &CellDefinition) -> f64 {
    match cell.read.scheme {
        SenseScheme::FetSense => cell.read.voltage.value(),
        _ => tech.vdd.value(),
    }
}

/// Wordline write voltage: the programming voltage, floored at Vdd
/// (pass-gate margin for transistor-accessed cells). Shared with
/// [`crate::bounds`].
pub(crate) fn wordline_write_voltage(tech: &TechnologyParams, cell: &CellDefinition) -> f64 {
    cell.write.voltage.value().max(tech.vdd.value())
}

/// `(sense margin volts, bitline swing fraction)` the sensing scheme needs.
/// Shared with [`crate::bounds`].
pub(crate) fn sense_window(scheme: SenseScheme) -> (f64, f64) {
    match scheme {
        SenseScheme::VoltageDifferential => (0.10, 0.30),
        SenseScheme::CurrentSense => (0.05, 0.08),
        // Full-ish swing at the elevated read voltage: the expensive one.
        SenseScheme::FetSense => (0.25, 0.45),
        SenseScheme::ChargeSense => (0.10, 0.30),
    }
}

/// Whether a read swings (and conducts through) *every* column on the row,
/// or only the mux-selected ones — see the bitline-energy commentary in
/// [`Subarray::characterize`]. Shared with [`crate::bounds`].
pub(crate) fn all_columns_swing(scheme: SenseScheme) -> bool {
    match scheme {
        SenseScheme::VoltageDifferential | SenseScheme::ChargeSense | SenseScheme::FetSense => true,
        SenseScheme::CurrentSense => false,
    }
}

/// Bias current a non-latch sense amplifier burns during margin
/// development. Shared with [`crate::bounds`].
pub(crate) fn sa_bias_current(scheme: SenseScheme) -> f64 {
    match scheme {
        SenseScheme::VoltageDifferential => 0.0,
        _ => 5.0e-6,
    }
}

/// Physical `(width, height)` of one cell in meters. Shared with
/// [`crate::bounds`].
pub(crate) fn cell_pitch(tech: &TechnologyParams, cell: &CellDefinition) -> (f64, f64) {
    let f = tech.feature_size.value();
    let cell_w = (cell.area.value() * cell.aspect_ratio).sqrt() * f;
    let cell_h = (cell.area.value() / cell.aspect_ratio).sqrt() * f;
    (cell_w, cell_h)
}

impl Subarray {
    /// Characterizes a `rows × cols` subarray of `cell` with column-mux
    /// degree `mux`.
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `cols`, or `mux` is zero, or `mux > cols`.
    pub fn characterize(
        tech: &TechnologyParams,
        cell: &CellDefinition,
        rows: usize,
        cols: usize,
        mux: usize,
        bits_per_cell: BitsPerCell,
    ) -> Self {
        assert!(rows > 0 && cols > 0 && mux > 0, "degenerate subarray");
        assert!(mux <= cols, "mux degree cannot exceed columns");

        let f = tech.feature_size.value();
        let vdd = tech.vdd.value();
        let sensed_cols = cols / mux;
        let levels = bits_per_cell.levels() as f64;
        let mlc = bits_per_cell.bits() > 1;

        // --- Geometry ---------------------------------------------------
        let (cell_w, cell_h) = cell_pitch(tech, cell);
        let array_width = cols as f64 * cell_w;
        let array_height = rows as f64 * cell_h;

        // --- Wordline ----------------------------------------------------
        let gate_per_cell = access_gate_cap(tech, cell);
        let wl = Wire::local(tech, array_width).with_load(cols as f64 * gate_per_cell);

        // Wordline voltages: FET-sensed cells need the read bias on the
        // gate; programming needs the write voltage (plus pass-gate margin
        // for transistor-accessed cells).
        let v_wl_read = wordline_read_voltage(tech, cell);
        let v_wl_write = wordline_write_voltage(tech, cell);

        let wl_drive_read = drive_load(tech, wl.capacitance, wl.resistance, v_wl_read);
        let wl_drive_write = drive_load(tech, wl.capacitance, wl.resistance, v_wl_write);

        // --- Bitline -----------------------------------------------------
        let drain_per_cell = access_drain_cap(tech, cell);
        let bl = Wire::local(tech, array_height).with_load(rows as f64 * drain_per_cell);

        // Margin the sense amp needs on its input.
        let i_cell = cell.read.cell_current.value().max(1.0e-7);
        let (sense_margin_v, swing_fraction) = sense_window(cell.read.scheme);
        // MLC sensing distinguishes `levels` states: smaller margins and
        // one SAR phase per stored bit.
        let margin_scale = if mlc { levels / 2.0 } else { 1.0 };
        let phases = bits_per_cell.bits() as f64;
        let t_develop = bl.capacitance * sense_margin_v * margin_scale / i_cell;
        let t_bl_single = cell.read.min_sense_time.value() + t_develop + bl.elmore_delay();
        let t_bl = t_bl_single * phases;

        // --- Components ---------------------------------------------------
        let decoder = Decoder::new(tech, rows);
        let col_decoder = Decoder::new(tech, mux.max(2));
        let sa = SenseAmp::new(tech, cell.read.scheme);
        let pre = Precharger::new(tech);
        let driver = WriteDriver::new(tech, cell.write.current.value(), cell.write.voltage.value());

        // --- Read path -----------------------------------------------------
        let t_mux_out = 1.5 * tech.fo4_delay;
        let read_latency =
            decoder.delay + wl_drive_read.delay + t_bl + sa.delay * phases + t_mux_out;
        // Destructive reads (FeRAM) restore in the background but stretch
        // the cycle by the write-back pulse.
        let restore = if cell.read.scheme.is_destructive() {
            cell.write.effective_pulse().value()
        } else {
            0.0
        };
        let read_cycle = read_latency + t_develop.max(0.2e-9) + restore;

        // --- Write path -----------------------------------------------------
        let pulse = cell.write.effective_pulse().value() * if mlc { levels - 1.0 } else { 1.0 };
        let write_latency = decoder.delay + wl_drive_write.delay + driver.delay + pulse;
        let write_cycle = write_latency + 0.2e-9;

        // --- Read energy ----------------------------------------------------
        let v_read = cell.read.voltage.value();
        let bl_swing_v = v_read * swing_fraction;
        // Sensed columns develop margin. In voltage/charge sensing every
        // column on the row swings whether sensed or not; FET-sensed arrays
        // are worse still — raising the wordline gates *every* storage
        // transistor on the row, so every bitline conducts at the elevated
        // read voltage. Only clamped current sensing confines the swing to
        // the selected columns.
        let swinging_cols = if all_columns_swing(cell.read.scheme) {
            cols as f64
        } else {
            sensed_cols as f64
        };
        let e_bitlines = swinging_cols * bl.capacitance * v_read * bl_swing_v * phases;
        // Conduction energy: every swinging column has a conducting cell for
        // the whole sense window (FET-sensed and voltage-sensed rows turn on
        // all their cells); clamped current sensing confines conduction to
        // the selected columns.
        let e_cells = swinging_cols * v_read * i_cell * t_bl;
        // Biased sense amplifiers (current/FET/charge mode) burn their bias
        // current for the whole margin-development window — slow sensing is
        // energy-expensive, not just latency-expensive.
        let sa_bias_current = sa_bias_current(cell.read.scheme);
        let e_sense =
            sensed_cols as f64 * (sa.energy + sa_bias_current * vdd * t_bl_single) * phases;
        let e_restore = if cell.read.scheme.is_destructive() {
            cols as f64 * cell.write_energy_per_cell().value() / driver.supply_efficiency
        } else {
            0.0
        };
        let read_energy = decoder.energy
            + col_decoder.energy
            + wl_drive_read.energy
            + e_bitlines
            + e_cells
            + e_sense
            + e_restore
            + t_mux_out * 0.0 // mux switching folded into SA/output energy
            + sensed_cols as f64 * 0.5e-15 * vdd * vdd; // output latches

        // --- Write energy ----------------------------------------------------
        let v_write = cell.write.voltage.value();
        let mlc_write_scale = if mlc { levels - 1.0 } else { 1.0 };
        let e_write_cells =
            sensed_cols as f64 * cell.write_energy_per_cell().value() * mlc_write_scale
                / driver.supply_efficiency;
        let e_write_bitlines =
            sensed_cols as f64 * bl.capacitance * v_write * v_write / driver.supply_efficiency;
        let write_energy = decoder.energy
            + col_decoder.energy
            + wl_drive_write.energy / driver.supply_efficiency
            + e_write_bitlines
            + e_write_cells
            + sensed_cols as f64 * driver.energy;

        // --- Leakage ----------------------------------------------------------
        let cell_leak = rows as f64 * cols as f64 * cell.cell_leakage.value();
        // One driver chain per row leaks (deeply power-gated to ~6 %);
        // chains are sized for the wordline load, so wide access transistors
        // (big write currents) and big cells ⇒ leakier row drivers.
        let wl_driver_leak = rows as f64 * wl_drive_read.leakage * 0.06;
        let periphery_leak = decoder.leakage
            + col_decoder.leakage
            + sensed_cols as f64 * (sa.leakage + driver.leakage)
            + cols as f64 * pre.leakage;
        let leakage = cell_leak + wl_driver_leak + periphery_leak;

        // --- Area ---------------------------------------------------------------
        let f2 = f * f;
        // Drivers stack in the decode strip at ~1.5 F² of strip area per
        // feature of device width (folded layout).
        let decoder_area =
            (decoder.total_width_f + rows as f64 * wl_drive_read.total_width_f) * 1.5 * f2;
        let decoder_strip_w = decoder_area / array_height.max(f);
        let sa_strip_h =
            sensed_cols as f64 * (sa.area_f2 + driver.area_f2) * f2 / array_width.max(f);
        let pre_strip_h = cols as f64 * pre.area_f2 * f2 / array_width.max(f);
        let width = array_width + decoder_strip_w;
        let height = array_height + sa_strip_h + pre_strip_h;

        Self {
            rows,
            cols,
            mux,
            bits_per_cell,
            array_width,
            array_height,
            width,
            height,
            read_latency,
            write_latency,
            read_cycle,
            write_cycle,
            read_energy,
            write_energy,
            leakage,
            bits_per_access: (sensed_cols as u64) * u64::from(bits_per_cell.bits()),
        }
    }

    /// Storage capacity of the subarray in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.rows as u64 * self.cols as u64 * u64::from(self.bits_per_cell.bits())
    }

    /// Total silicon area, m².
    pub fn total_area(&self) -> f64 {
        self.width * self.height
    }

    /// Fraction of the area spent on cells rather than periphery.
    pub fn area_efficiency(&self) -> f64 {
        (self.array_width * self.array_height) / self.total_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_celldb::{custom, tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::Meters;

    fn t22() -> TechnologyParams {
        lookup(Meters::from_nano(22.0))
    }

    fn stt_opt() -> CellDefinition {
        tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap()
    }

    #[test]
    fn nanosecond_scale_read() {
        let tech = t22();
        let sub = Subarray::characterize(&tech, &stt_opt(), 512, 1024, 4, BitsPerCell::Slc);
        assert!(
            (0.3e-9..10.0e-9).contains(&sub.read_latency),
            "STT subarray read latency {}",
            sub.read_latency
        );
    }

    #[test]
    fn sram_subarray_sanity() {
        let tech = lookup(Meters::from_nano(16.0));
        let sram = custom::sram_16nm();
        let sub = Subarray::characterize(&tech, &sram, 256, 512, 4, BitsPerCell::Slc);
        assert!(sub.read_latency < 2.0e-9, "SRAM read {}", sub.read_latency);
        assert!(
            sub.write_latency < 2.0e-9,
            "SRAM write {}",
            sub.write_latency
        );
        // 128 sensed columns: energy should be tens of pJ at most.
        assert!(
            sub.read_energy < 100.0e-12,
            "SRAM read energy {}",
            sub.read_energy
        );
        assert!(sub.leakage > 0.0);
    }

    #[test]
    fn write_pulse_dominates_nvm_write_latency() {
        let tech = t22();
        let cell = stt_opt();
        let sub = Subarray::characterize(&tech, &cell, 512, 1024, 4, BitsPerCell::Slc);
        assert!(sub.write_latency >= cell.write.pulse.value());
        assert!(sub.write_latency < cell.write.pulse.value() + 3.0e-9);
    }

    #[test]
    fn taller_arrays_are_slower() {
        let tech = t22();
        let cell = stt_opt();
        let short = Subarray::characterize(&tech, &cell, 128, 1024, 4, BitsPerCell::Slc);
        let tall = Subarray::characterize(&tech, &cell, 2048, 1024, 4, BitsPerCell::Slc);
        assert!(tall.read_latency > short.read_latency);
    }

    #[test]
    fn mlc_doubles_capacity_and_slows_access() {
        let tech = t22();
        let cell = tentpole::tentpole_cell(TechnologyClass::Rram, CellFlavor::Optimistic).unwrap();
        let slc = Subarray::characterize(&tech, &cell, 512, 512, 4, BitsPerCell::Slc);
        let mlc = Subarray::characterize(&tech, &cell, 512, 512, 4, BitsPerCell::Mlc2);
        assert_eq!(mlc.capacity_bits(), 2 * slc.capacity_bits());
        assert_eq!(mlc.bits_per_access, 2 * slc.bits_per_access);
        assert!(mlc.read_latency > slc.read_latency);
        assert!(mlc.write_latency > slc.write_latency);
        assert!(mlc.read_energy > slc.read_energy);
    }

    #[test]
    fn fefet_reads_cost_more_energy_than_stt() {
        // The array-level read-energy tiering behind paper Fig. 5.
        let tech = t22();
        let stt = Subarray::characterize(&tech, &stt_opt(), 512, 1024, 8, BitsPerCell::Slc);
        let fefet_cell =
            tentpole::tentpole_cell(TechnologyClass::FeFet, CellFlavor::Optimistic).unwrap();
        let fefet = Subarray::characterize(&tech, &fefet_cell, 512, 1024, 8, BitsPerCell::Slc);
        assert!(
            fefet.read_energy > stt.read_energy,
            "FeFET {} vs STT {}",
            fefet.read_energy,
            stt.read_energy
        );
    }

    #[test]
    fn sram_cells_dominate_sram_leakage() {
        let tech = lookup(Meters::from_nano(16.0));
        let sram = custom::sram_16nm();
        let sub = Subarray::characterize(&tech, &sram, 512, 512, 4, BitsPerCell::Slc);
        let cell_leak = 512.0 * 512.0 * sram.cell_leakage.value();
        assert!(sub.leakage > cell_leak * 0.9);
        assert!(
            cell_leak / sub.leakage > 0.5,
            "cells should dominate SRAM leakage"
        );
    }

    #[test]
    fn nvm_leakage_is_periphery_only_and_small() {
        let tech = t22();
        let stt = Subarray::characterize(&tech, &stt_opt(), 512, 1024, 4, BitsPerCell::Slc);
        let tech16 = lookup(Meters::from_nano(16.0));
        let sram = Subarray::characterize(
            &tech16,
            &custom::sram_16nm(),
            512,
            1024,
            4,
            BitsPerCell::Slc,
        );
        assert!(
            stt.leakage < sram.leakage / 5.0,
            "eNVM leakage {} should be ≪ SRAM {}",
            stt.leakage,
            sram.leakage
        );
    }

    #[test]
    fn area_efficiency_in_unit_interval() {
        let tech = t22();
        let sub = Subarray::characterize(&tech, &stt_opt(), 512, 1024, 4, BitsPerCell::Slc);
        let eff = sub.area_efficiency();
        assert!((0.05..1.0).contains(&eff), "{eff}");
    }

    #[test]
    fn wider_mux_means_fewer_bits_and_less_sense_energy() {
        let tech = t22();
        let cell = stt_opt();
        let narrow = Subarray::characterize(&tech, &cell, 512, 1024, 2, BitsPerCell::Slc);
        let wide = Subarray::characterize(&tech, &cell, 512, 1024, 16, BitsPerCell::Slc);
        assert!(wide.bits_per_access < narrow.bits_per_access);
        assert!(wide.read_energy < narrow.read_energy);
    }

    #[test]
    #[should_panic(expected = "mux")]
    fn mux_larger_than_cols_panics() {
        let tech = t22();
        Subarray::characterize(&tech, &stt_opt(), 16, 8, 16, BitsPerCell::Slc);
    }
}
