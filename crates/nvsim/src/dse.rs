//! Internal-organization design-space exploration: enumerate candidate
//! subarray geometries and bank compositions, filter invalid ones, and keep
//! the best under each optimization target.
//!
//! The scan is a **branch-and-bound streaming pass**: candidates are
//! visited in the deterministic enumeration order, and a candidate is fully
//! characterized only when at least one target's provably-sound score
//! lower bound ([`crate::bounds`]) says it could still beat that target's
//! incumbent. Skipped candidates are proven non-winners, so winners — and
//! everything derived from them — are byte-identical to the exhaustive
//! scan (kept as [`optimize_targets_unpruned`] for proofs and benches).
//! Nothing is materialized per candidate: incumbents hold lightweight
//! [`Bank`] records, and only each target's winner is packaged into a full
//! result.

use crate::bank::{Bank, Organization};
use crate::bounds::{BoundContext, IncumbentStore, TargetSeed};
use crate::cache::SubarrayCache;
use crate::result::{ArrayCharacterization, OptimizationTarget};
use crate::subarray::Subarray;
use crate::technology::lookup;
use crate::{ArrayConfig, CharacterizationError};
use nvmx_celldb::CellDefinition;
use nvmx_units::{Joules, Ratio, Seconds, SquareMillimeters, Watts};

/// Candidate geometry axes. Modest powers of two: real NVSim sweeps the same
/// shape space. `pub(crate)` so [`crate::cache`] can slot the grid into a
/// fixed-size table.
pub(crate) const ROW_CHOICES: [usize; 5] = [128, 256, 512, 1024, 2048];
pub(crate) const COL_CHOICES: [usize; 5] = [256, 512, 1024, 2048, 4096];
pub(crate) const MUX_CHOICES: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Upper bound on bank subarray count (beyond this the H-tree model stops
/// being credible and the design is silly anyway).
const MAX_SUBARRAYS: usize = 8192;

/// Minimum cell-area fraction a candidate organization must reach
/// (NVSim-style sanity constraint: designs below it drown the cells in
/// periphery). When no candidate qualifies, the constraint is dropped so
/// characterization always returns a design.
const MIN_AREA_EFFICIENCY: f64 = 0.25;

/// [`enumerate_organizations`] plus each candidate's cache-slab slot
/// (derived for free from the loop indices, so the cached scan never has to
/// search the choice arrays).
pub(crate) fn enumerate_organizations_indexed(config: &ArrayConfig) -> Vec<(Organization, usize)> {
    let capacity_cells = config.capacity.cells(config.bits_per_cell);
    let word_bits = config.word_bits;
    let mut orgs = Vec::new();

    for (row_idx, rows) in ROW_CHOICES.into_iter().enumerate() {
        for (col_idx, cols) in COL_CHOICES.into_iter().enumerate() {
            let cells_per_sub = (rows * cols) as u64;
            if cells_per_sub > capacity_cells {
                continue;
            }
            let total = capacity_cells.div_ceil(cells_per_sub) as usize;
            if total > MAX_SUBARRAYS {
                continue;
            }
            for (mux_idx, mux) in MUX_CHOICES.into_iter().enumerate() {
                if mux > cols {
                    continue;
                }
                let sensed = cols / mux;
                let bits_per_sub = sensed as u64 * u64::from(config.bits_per_cell.bits());
                // Don't sense more than 4× the word (grossly wasteful), and
                // the active group must be able to supply the word.
                if bits_per_sub > word_bits * 4 {
                    continue;
                }
                let active = word_bits.div_ceil(bits_per_sub) as usize;
                if active > total || active > 64 {
                    continue;
                }
                orgs.push((
                    Organization {
                        rows,
                        cols,
                        mux,
                        active_subarrays: active,
                        total_subarrays: total,
                    },
                    crate::cache::grid_slot(row_idx, col_idx, mux_idx),
                ));
            }
        }
    }
    orgs
}

/// Enumerates all valid organizations under `config`.
///
/// Candidate validity is purely geometric (capacity coverage, mux bounds,
/// sensing-vs-word-width sanity), so the enumeration is cell-independent;
/// the access-transistor drive constraint is deliberately not a filter —
/// write-driver sizing already folds current needs into energy/area.
pub fn enumerate_organizations(config: &ArrayConfig) -> Vec<Organization> {
    enumerate_organizations_indexed(config)
        .into_iter()
        .map(|(org, _)| org)
        .collect()
}

/// Characterizes one organization into a full result record.
pub fn characterize_organization(
    cell: &CellDefinition,
    config: &ArrayConfig,
    org: Organization,
) -> ArrayCharacterization {
    let tech = lookup(config.node);
    characterize_organization_with(&tech, cell, config, org)
}

/// [`characterize_organization`] with the technology lookup hoisted out, so
/// sweeps over many organizations at one node resolve the table once.
pub fn characterize_organization_with(
    tech: &crate::technology::TechnologyParams,
    cell: &CellDefinition,
    config: &ArrayConfig,
    org: Organization,
) -> ArrayCharacterization {
    let sub = Subarray::characterize(
        tech,
        cell,
        org.rows,
        org.cols,
        org.mux,
        config.bits_per_cell,
    );
    let bank = Bank::compose(tech, sub, org, config.word_bits);
    package(cell, config, bank, config.target)
}

/// Materializes one characterized bank into the full result record. Called
/// once per *winner* — the candidate scan itself never packages (and never
/// clones the cell-name/flavor strings).
fn package(
    cell: &CellDefinition,
    config: &ArrayConfig,
    bank: Bank,
    target: OptimizationTarget,
) -> ArrayCharacterization {
    ArrayCharacterization {
        cell_name: cell.name.clone(),
        technology: cell.technology,
        flavor: cell.flavor.clone(),
        capacity: config.capacity,
        node_nm: config.node.value() * 1.0e9,
        bits_per_cell: config.bits_per_cell,
        target,
        word_bits: config.word_bits,
        read_latency: Seconds::new(bank.read_latency),
        write_latency: Seconds::new(bank.write_latency),
        read_cycle: Seconds::new(bank.read_cycle),
        write_cycle: Seconds::new(bank.write_cycle),
        read_energy: Joules::new(bank.read_energy),
        write_energy: Joules::new(bank.write_energy),
        leakage: Watts::new(bank.leakage),
        area: SquareMillimeters::from_square_meters(bank.area),
        area_efficiency: Ratio::new(bank.area_efficiency),
        read_bandwidth: bank.read_bandwidth,
        write_bandwidth: bank.write_bandwidth,
        endurance_cycles: cell.endurance_cycles,
        retention: cell.retention,
        nonvolatile: cell.is_nonvolatile(),
        organization: bank.organization,
    }
}

/// The metric a characterized bank would score under `target`, bit-for-bit
/// equal to packaging the bank into an [`ArrayCharacterization`] and calling
/// [`ArrayCharacterization::score`] — the unit wrappers are transparent
/// `f64` newtypes, and the one lossy-looking case (area, scored in mm²)
/// applies the identical conversion [`package`] would.
fn bank_score(bank: &Bank, target: OptimizationTarget) -> f64 {
    match target {
        OptimizationTarget::ReadLatency => bank.read_latency,
        OptimizationTarget::WriteLatency => bank.write_latency,
        OptimizationTarget::ReadEnergy => bank.read_energy,
        OptimizationTarget::WriteEnergy => bank.write_energy,
        OptimizationTarget::ReadEdp => bank.read_energy * bank.read_latency,
        OptimizationTarget::WriteEdp => bank.write_energy * bank.write_latency,
        OptimizationTarget::Area => SquareMillimeters::from_square_meters(bank.area).value(),
        OptimizationTarget::Leakage => bank.leakage,
    }
}

/// Per-target incumbents of the streaming scan. Mirrors the two-chain
/// selection rule of the exhaustive scan exactly: `best` tracks the first
/// strictly-better candidate meeting [`MIN_AREA_EFFICIENCY`], and
/// `best_unconstrained` tracks the overall first strictly-better candidate
/// (the fallback when nothing qualifies). Incumbents own their [`Bank`]
/// (plain data, no heap) because the scan no longer materializes a
/// candidate vector to index into.
struct TargetScan {
    target: OptimizationTarget,
    best: Option<(f64, Bank)>,
    best_unconstrained: Option<(f64, Bank)>,
}

impl TargetScan {
    fn new(target: OptimizationTarget) -> Self {
        Self {
            target,
            best: None,
            best_unconstrained: None,
        }
    }

    /// A scan whose incumbents start at a prior identical pass's **final**
    /// chains ([`TargetSeed`]). The scan then behaves exactly as if it had
    /// already visited the winning candidates: no later candidate scores
    /// strictly below a recorded minimum, and equal scores never displace
    /// an incumbent (first-strictly-better rule), so the final winner is
    /// byte-identical to the cold scan's — while [`Self::provably_loses`]
    /// prunes against the final winner from the first candidate on.
    fn seeded(target: OptimizationTarget, seed: TargetSeed) -> Self {
        Self {
            target,
            best: seed.best,
            best_unconstrained: seed.best_unconstrained,
        }
    }

    /// The scan's final chains, cloned for recording into an
    /// [`IncumbentStore`].
    fn to_seed(&self) -> TargetSeed {
        TargetSeed {
            best: self.best.clone(),
            best_unconstrained: self.best_unconstrained.clone(),
        }
    }

    /// Offers one characterized candidate, replicating the exhaustive
    /// scan's first-strictly-better update rule (so ties resolve to the
    /// earlier candidate, identically).
    fn offer(&mut self, bank: &Bank) {
        let score = bank_score(bank, self.target);
        let improves = |incumbent: &Option<(f64, Bank)>| match incumbent {
            None => true,
            Some((incumbent_score, _)) => score < *incumbent_score,
        };
        if Ratio::new(bank.area_efficiency).value() >= MIN_AREA_EFFICIENCY && improves(&self.best) {
            self.best = Some((score, bank.clone()));
        }
        if improves(&self.best_unconstrained) {
            self.best_unconstrained = Some((score, bank.clone()));
        }
    }

    /// `true` when `bound` (a sound lower bound on a candidate's score)
    /// proves the candidate cannot change this target's final winner:
    /// an incumbent qualifies under the area-efficiency constraint and the
    /// candidate's score cannot be strictly below it. While no candidate
    /// qualifies yet, nothing is skippable — the candidate might become the
    /// first qualified incumbent regardless of score.
    fn provably_loses(&self, bound: f64) -> bool {
        match &self.best {
            None => false,
            Some((incumbent_score, _)) => bound >= *incumbent_score,
        }
    }

    /// The winning bank: the best qualified candidate, else the best
    /// overall — exactly `best.or(best_unconstrained)`.
    fn into_winner(self) -> Option<Bank> {
        self.best.or(self.best_unconstrained).map(|(_, bank)| bank)
    }
}

/// Runs the organization search **once** and returns the best design under
/// each of `targets`, in order.
///
/// This is the shared-DSE hot path: subarray and bank characterization do
/// not depend on the optimization target (the target only selects among
/// candidates), so an N-target sweep costs one enumeration pass instead of
/// N. The pass is a branch-and-bound streaming scan: candidates are visited
/// in deterministic enumeration order, and one is characterized only when
/// some target's score lower bound ([`crate::bounds`]) leaves it a chance
/// of beating that target's incumbent. A skipped candidate is *proven*
/// unable to change any winner, so results are byte-identical to the
/// exhaustive scan ([`optimize_targets_unpruned`]) — and to what a
/// standalone [`optimize`] call per target would produce.
///
/// With `cache` present, subarray physics are memoized across calls: every
/// job of a multi-capacity study that needs the same `(cell, node,
/// geometry, depth)` reuses one characterization. Pruning composes with the
/// cache — a pruned candidate neither hits nor populates it — and prune
/// counts are recorded next to the hit/miss counters
/// ([`CacheStats::pruned`](crate::cache::CacheStats)). Cached and uncached
/// runs are bit-identical.
///
/// # Errors
///
/// Same conditions as [`optimize`]; `config.target` is ignored in favor of
/// the explicit `targets` list.
pub fn optimize_targets_cached(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
    cache: Option<&SubarrayCache>,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    optimize_targets_seeded(cell, config, targets, cache, None)
}

/// [`optimize_targets_cached`] with cross-pass incumbent seeding.
///
/// With `seeds` present, each target's scan starts from the **final**
/// incumbent chains a prior *identical* pass recorded — same cell,
/// technology node, programming depth, capacity, and word width
/// ([`IncumbentStore`] keys on exactly those, so non-overlapping design
/// points simply run cold). A seed carries the recorded winning bank, so
/// the scan behaves as if it had already visited the winner: winners stay
/// byte-identical to a cold scan (proptested in
/// `tests/prune_equivalence.rs`), while the pre-tightened incumbents let
/// the score bounds prune every candidate that cannot beat the final
/// winner — on a fully warm pass that is every candidate whose bound
/// reaches the winning score, pushing the prune rate well above the cold
/// scan's. Completed passes record their chains back into the store
/// (write-once), so a multi-study queue warms itself as it runs.
///
/// # Errors
///
/// Same conditions as [`optimize`]; a failed pass records nothing.
pub fn optimize_targets_seeded(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
    cache: Option<&SubarrayCache>,
    seeds: Option<&IncumbentStore>,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    if !cell.supports(config.bits_per_cell) {
        return Err(CharacterizationError::UnsupportedBitsPerCell {
            cell: cell.name.clone(),
            requested: config.bits_per_cell,
            supported: cell.max_bits_per_cell,
        });
    }
    let orgs = enumerate_organizations_indexed(config);
    if orgs.is_empty() {
        return Err(CharacterizationError::NoValidOrganization {
            cell: cell.name.clone(),
            capacity: config.capacity,
        });
    }
    let tech = lookup(config.node);
    let bounds = BoundContext::new(&tech, cell, config.bits_per_cell, config.word_bits);
    // One outer-map access per pass; candidate lookups inside the session
    // are a pre-computed slot index plus an atomic load.
    let mut session = cache.map(|cache| cache.session(cell, &tech, config.bits_per_cell));
    let mut scans: Vec<TargetScan> = targets
        .iter()
        .map(
            |&t| match seeds.and_then(|store| store.lookup(cell, &tech, config, t)) {
                Some(seed) => TargetScan::seeded(t, seed),
                None => TargetScan::new(t),
            },
        )
        .collect();
    for (org, slot) in orgs {
        // Branch and bound: skip full characterization when every target's
        // bound proves the candidate a non-winner. The bound check runs in
        // target order and stops at the first target that still needs the
        // candidate.
        let provably_loses = scans
            .iter()
            .all(|scan| scan.provably_loses(bounds.score_bound(&org, slot, scan.target)));
        if provably_loses {
            if let Some(session) = &mut session {
                session.note_pruned();
            }
            continue;
        }
        let sub = match &mut session {
            Some(session) => session.lookup(Some(slot), org.rows, org.cols, org.mux),
            None => Subarray::characterize(
                &tech,
                cell,
                org.rows,
                org.cols,
                org.mux,
                config.bits_per_cell,
            ),
        };
        let bank = Bank::compose(&tech, sub, org, config.word_bits);
        for scan in &mut scans {
            scan.offer(&bank);
        }
    }
    let mut results = Vec::with_capacity(scans.len());
    for scan in scans {
        let target = scan.target;
        // Record before consuming the scan; the write is deferred until
        // every target resolved, so a failed pass records nothing.
        let seed = seeds.map(|_| scan.to_seed());
        let bank =
            scan.into_winner()
                .ok_or_else(|| CharacterizationError::NoValidOrganization {
                    cell: cell.name.clone(),
                    capacity: config.capacity,
                })?;
        results.push((target, seed, package(cell, config, bank, target)));
    }
    if let Some(store) = seeds {
        for (target, seed, _) in &results {
            if let Some(seed) = seed {
                store.record(cell, &tech, config, *target, seed.clone());
            }
        }
    }
    Ok(results.into_iter().map(|(_, _, array)| array).collect())
}

/// The exhaustive (PR 2–4) scan: characterizes **every** candidate into a
/// materialized bank vector, then selects per target. Observationally
/// identical to [`optimize_targets_cached`]; kept so tests can prove the
/// branch-and-bound scan byte-identical and benches can measure the win.
/// Not part of the supported API.
///
/// # Errors
///
/// Same conditions as [`optimize`].
#[doc(hidden)]
pub fn optimize_targets_unpruned(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
    cache: Option<&SubarrayCache>,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    if !cell.supports(config.bits_per_cell) {
        return Err(CharacterizationError::UnsupportedBitsPerCell {
            cell: cell.name.clone(),
            requested: config.bits_per_cell,
            supported: cell.max_bits_per_cell,
        });
    }
    let orgs = enumerate_organizations_indexed(config);
    if orgs.is_empty() {
        return Err(CharacterizationError::NoValidOrganization {
            cell: cell.name.clone(),
            capacity: config.capacity,
        });
    }
    let tech = lookup(config.node);
    let mut session = cache.map(|cache| cache.session(cell, &tech, config.bits_per_cell));
    let banks: Vec<Bank> = orgs
        .into_iter()
        .map(|(org, slot)| {
            let sub = match &mut session {
                Some(session) => session.lookup(Some(slot), org.rows, org.cols, org.mux),
                None => Subarray::characterize(
                    &tech,
                    cell,
                    org.rows,
                    org.cols,
                    org.mux,
                    config.bits_per_cell,
                ),
            };
            Bank::compose(&tech, sub, org, config.word_bits)
        })
        .collect();
    targets
        .iter()
        .map(|&target| {
            // First strictly-better scan order matches the per-target
            // optimizer exactly, so ties resolve identically. Incumbent
            // scores are cached — score() per candidate, not per compare.
            let mut best: Option<(usize, f64)> = None;
            let mut best_unconstrained: Option<(usize, f64)> = None;
            for (index, bank) in banks.iter().enumerate() {
                let score = bank_score(bank, target);
                let improves = |incumbent: Option<(usize, f64)>| match incumbent {
                    None => true,
                    Some((_, incumbent_score)) => score < incumbent_score,
                };
                if Ratio::new(bank.area_efficiency).value() >= MIN_AREA_EFFICIENCY && improves(best)
                {
                    best = Some((index, score));
                }
                if improves(best_unconstrained) {
                    best_unconstrained = Some((index, score));
                }
            }
            let (index, _) = best.or(best_unconstrained).ok_or_else(|| {
                CharacterizationError::NoValidOrganization {
                    cell: cell.name.clone(),
                    capacity: config.capacity,
                }
            })?;
            Ok(package(cell, config, banks[index].clone(), target))
        })
        .collect()
}

/// [`optimize_targets_cached`] without memoization — every geometry is
/// characterized from scratch.
///
/// # Errors
///
/// Same conditions as [`optimize`].
pub fn optimize_targets(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    optimize_targets_cached(cell, config, targets, None)
}

/// The pre-cache scoring path: materializes a full [`ArrayCharacterization`]
/// for **every** candidate (two string clones + full packaging each) and
/// clones the winner out of the candidate vector. Kept only so benches and
/// regression tests can measure and prove the zero-copy restructure against
/// the previous engine. Not part of the supported API.
///
/// # Errors
///
/// Same conditions as [`optimize`].
#[doc(hidden)]
pub fn optimize_targets_materialized(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    if !cell.supports(config.bits_per_cell) {
        return Err(CharacterizationError::UnsupportedBitsPerCell {
            cell: cell.name.clone(),
            requested: config.bits_per_cell,
            supported: cell.max_bits_per_cell,
        });
    }
    let orgs = enumerate_organizations(config);
    if orgs.is_empty() {
        return Err(CharacterizationError::NoValidOrganization {
            cell: cell.name.clone(),
            capacity: config.capacity,
        });
    }
    let tech = lookup(config.node);
    let candidates: Vec<ArrayCharacterization> = orgs
        .into_iter()
        .map(|org| characterize_organization_with(&tech, cell, config, org))
        .collect();
    targets
        .iter()
        .map(|&target| {
            let mut best: Option<(usize, f64)> = None;
            let mut best_unconstrained: Option<(usize, f64)> = None;
            for (index, candidate) in candidates.iter().enumerate() {
                let score = candidate.score(target);
                let improves = |incumbent: Option<(usize, f64)>| match incumbent {
                    None => true,
                    Some((_, incumbent_score)) => score < incumbent_score,
                };
                if candidate.area_efficiency.value() >= MIN_AREA_EFFICIENCY && improves(best) {
                    best = Some((index, score));
                }
                if improves(best_unconstrained) {
                    best_unconstrained = Some((index, score));
                }
            }
            let (index, _) = best.or(best_unconstrained).ok_or_else(|| {
                CharacterizationError::NoValidOrganization {
                    cell: cell.name.clone(),
                    capacity: config.capacity,
                }
            })?;
            let mut winner = candidates[index].clone();
            winner.target = target;
            Ok(winner)
        })
        .collect()
}

/// Runs the full organization search and returns the best design under
/// `config.target`. Thin wrapper over the shared pass in
/// [`optimize_targets`].
pub fn optimize(
    cell: &CellDefinition,
    config: &ArrayConfig,
) -> Result<ArrayCharacterization, CharacterizationError> {
    let mut results = optimize_targets(cell, config, &[config.target])?;
    Ok(results.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::OptimizationTarget;
    use nvmx_celldb::{custom, tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::{BitsPerCell, Capacity, Meters};

    fn cfg(target: OptimizationTarget) -> ArrayConfig {
        ArrayConfig {
            capacity: Capacity::from_mebibytes(2),
            word_bits: 128,
            node: Meters::from_nano(22.0),
            bits_per_cell: BitsPerCell::Slc,
            target,
        }
    }

    fn stt() -> CellDefinition {
        tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap()
    }

    #[test]
    fn enumeration_is_nonempty_and_valid() {
        let orgs = enumerate_organizations(&cfg(OptimizationTarget::ReadLatency));
        assert!(orgs.len() > 20, "{} orgs", orgs.len());
        for org in &orgs {
            assert!(org.active_subarrays <= org.total_subarrays);
            assert!(org.mux <= org.cols);
            let cap = org.total_subarrays as u64 * (org.rows * org.cols) as u64;
            assert!(cap >= Capacity::from_mebibytes(2).bits(), "covers capacity");
        }
    }

    #[test]
    fn optimize_respects_target() {
        let cell = stt();
        let lat = optimize(&cell, &cfg(OptimizationTarget::ReadLatency)).unwrap();
        let energy = optimize(&cell, &cfg(OptimizationTarget::ReadEnergy)).unwrap();
        let area = optimize(&cell, &cfg(OptimizationTarget::Area)).unwrap();
        assert!(lat.read_latency.value() <= energy.read_latency.value());
        assert!(energy.read_energy.value() <= lat.read_energy.value());
        assert!(area.area.value() <= lat.area.value());
    }

    #[test]
    fn mlc_unsupported_for_sram() {
        let sram = custom::sram_16nm();
        let mut config = cfg(OptimizationTarget::ReadLatency);
        config.bits_per_cell = BitsPerCell::Mlc2;
        let err = optimize(&sram, &config).unwrap_err();
        assert!(matches!(
            err,
            CharacterizationError::UnsupportedBitsPerCell { .. }
        ));
    }

    #[test]
    fn zero_copy_scan_matches_the_materialized_scoring_path() {
        // The PR-1 engine packaged every candidate before scoring; the
        // zero-copy scan must select and package identically.
        let cell = stt();
        for target in OptimizationTarget::ALL {
            let config = cfg(target);
            let fast = optimize_targets(&cell, &config, &OptimizationTarget::ALL).unwrap();
            let reference =
                optimize_targets_materialized(&cell, &config, &OptimizationTarget::ALL).unwrap();
            assert_eq!(fast, reference, "scoring paths diverged under {target}");
        }
    }

    #[test]
    fn cached_pass_is_bit_identical_and_hits_on_reuse() {
        let cell = stt();
        let config = cfg(OptimizationTarget::ReadEdp);
        let cache = SubarrayCache::new();
        let uncached = optimize_targets(&cell, &config, &OptimizationTarget::ALL).unwrap();
        let cold = optimize_targets_cached(&cell, &config, &OptimizationTarget::ALL, Some(&cache))
            .unwrap();
        let warm = optimize_targets_cached(&cell, &config, &OptimizationTarget::ALL, Some(&cache))
            .unwrap();
        assert_eq!(uncached, cold);
        assert_eq!(uncached, warm);
        let stats = cache.stats();
        assert_eq!(
            stats.misses as usize,
            cache.len(),
            "every miss memoizes exactly one geometry"
        );
        assert_eq!(
            stats.hits, stats.misses,
            "second pass must be served entirely from the cache"
        );
    }

    #[test]
    fn bank_score_matches_packaged_score_for_every_target() {
        let cell = stt();
        let config = cfg(OptimizationTarget::ReadLatency);
        let tech = lookup(config.node);
        for org in enumerate_organizations(&config).into_iter().take(8) {
            let sub = Subarray::characterize(
                &tech,
                &cell,
                org.rows,
                org.cols,
                org.mux,
                config.bits_per_cell,
            );
            let bank = Bank::compose(&tech, sub, org, config.word_bits);
            let packaged = package(&cell, &config, bank.clone(), config.target);
            for target in OptimizationTarget::ALL {
                assert_eq!(
                    bank_score(&bank, target).to_bits(),
                    packaged.score(target).to_bits(),
                    "score drift for {target} at {org}"
                );
            }
        }
    }

    #[test]
    fn area_optimized_design_trades_latency() {
        // Paper Sec. V-B: lower area efficiency correlates with lower
        // latency; conversely the area-optimal point is slower.
        let cell = stt();
        let area_opt = optimize(&cell, &cfg(OptimizationTarget::Area)).unwrap();
        let lat_opt = optimize(&cell, &cfg(OptimizationTarget::ReadLatency)).unwrap();
        assert!(area_opt.read_latency.value() >= lat_opt.read_latency.value());
        assert!(area_opt.area_efficiency.value() >= lat_opt.area_efficiency.value());
    }
}
