//! Provably-sound per-target score lower bounds for branch-and-bound DSE
//! pruning.
//!
//! The shared design-space scan in [`crate::dse`] walks every candidate
//! [`Organization`] in a fixed order and keeps the best design per
//! [`OptimizationTarget`]. A candidate only matters if its score could be
//! *strictly lower* than the incumbent's, so a cheap **lower bound** on the
//! score lets the scan skip full characterization ([`crate::subarray`] +
//! [`crate::bank`]) for candidates that provably cannot win — without
//! changing a single selected winner.
//!
//! # Soundness argument
//!
//! A bound combines two ingredients:
//!
//! 1. **Exact mirrored subarray terms.** Every subarray-level term (and
//!    the bank area, which has no H-tree contribution) is computed with
//!    the *same source-level expression and the same inputs* as the real
//!    model in
//!    [`Subarray::characterize`](crate::subarray::Subarray::characterize) /
//!    [`Bank::compose`](crate::bank::Bank::compose), so its floating-point
//!    value is bit-identical to the term inside the true score — the Area
//!    bound *equals* the true score.
//! 2. **A monotone floor for the H-tree.** The bank's repeated-wire H-tree
//!    is the one per-candidate cost that cannot be tabled per axis (its
//!    route length couples all three geometry axes plus the subarray
//!    count), and sizing it exactly per candidate would cost as much as
//!    the `Bank::compose` call pruning is meant to skip. Instead,
//!    `HtreeStair` (private to this module) precomputes, once per technology node, the
//!    repeated-wire characterization at the *minimum length of each
//!    segment-count class* (plus a log-spaced anchor subdivision of the
//!    single-segment class). Within a class the wire load grows with
//!    length, so the class-minimum characterization is a floor for every
//!    longer route in the class — the stair lookup is ≤ the true
//!    `RepeatedWire` for the candidate's exact route, at the cost of an
//!    array index instead of a logical-effort chain sizing.
//!
//! IEEE-754 round-to-nearest addition and multiplication are monotone in
//! each non-negative operand, so feeding the floored H-tree terms through
//! the true score's expression chains keeps every bound ≤ the true score.
//! Both properties — stair ≤ `RepeatedWire` across dense route lengths,
//! and bound ≤ score (with Area exactly equal) across the whole candidate
//! grid for random cells/capacities/depths — are proptested in
//! `tests/prune_equivalence.rs`, which is what keeps this mirror honest if
//! the model ever changes.
//!
//! # Why it is cheap
//!
//! Every subarray-model input depends on only one geometry axis: decoders
//! and bitlines on `rows` (5 choices), wordline drive on `cols` (5
//! choices), the column decoder on `mux` (6 choices).
//! [`BoundContext::new`] runs the expensive pieces (logical-effort buffer
//! chains, decoder trees, component sizing — the transcendental-heavy
//! parts of characterization) **once per axis value** for the whole
//! design-space pass, and the H-tree stair **once per technology node for
//! the whole process** (shared behind a lock, since it depends on nothing
//! cell- or study-specific). The per-candidate bound is then table lookups
//! plus a few dozen multiply-adds — no transcendentals, no allocation, no
//! wire sizing — memoized per grid slot so multiple targets probing one
//! candidate share the work. One context costs about as much as
//! characterizing a handful of subarrays and is amortized over the ~10× as
//! many candidates a pass scans; the scan then skips the subarray
//! re-derivation, the bank composition (including its wire sizing), and
//! the cache traffic for every pruned candidate.

use crate::bank::{Bank, Organization};
use crate::components::{Precharger, SenseAmp, WriteDriver};
use crate::dse::{COL_CHOICES, MUX_CHOICES, ROW_CHOICES};
use crate::gates::{drive_load, Decoder};
use crate::result::OptimizationTarget;
use crate::subarray::{
    access_drain_cap, access_gate_cap, all_columns_swing, cell_pitch, sa_bias_current,
    sense_window, wordline_read_voltage, wordline_write_voltage,
};
use crate::technology::TechnologyParams;
use crate::wire::{RepeatedWire, Wire};
use nvmx_celldb::CellDefinition;
use nvmx_units::{BitsPerCell, SquareMillimeters};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// Repeater pitch of the H-tree model — must mirror `RepeatedWire::new`
/// (the stair-soundness proptest catches drift).
const SEGMENT: f64 = 0.5e-3;

/// Segment-count classes precomputed by the stair; routes beyond
/// `MAX_CLASS × SEGMENT` (32 mm — far outside any credible bank) fall back
/// to an exact `RepeatedWire` sizing.
const MAX_CLASS: usize = 64;

/// Log-spaced anchor lengths subdividing the single-segment class
/// (2 µm … `SEGMENT`). Small banks live here, so the first class gets a
/// finer floor than the per-class minimum alone would give.
const CLASS1_ANCHORS: usize = 24;

/// Linear anchors inside each multi-segment class: the class infimum plus
/// `CLASS_ANCHORS − 1` interior points, so the floor is within a few
/// percent of the true sizing instead of the ~`1/k` slack the class
/// minimum alone would leave.
const CLASS_ANCHORS: usize = 4;

/// Per-technology monotone floor table for [`RepeatedWire`]: for any route
/// length, a precomputed characterization that is component-wise ≤ the
/// true `RepeatedWire::new` of that length.
///
/// Within one segment-count class `k` (lengths in `((k−1)·S, k·S]`), the
/// true characterization is `k` identical stages whose wire load grows
/// with length, so the characterization at any anchor length ≤ the route
/// *in the same class* floors it. Each class stores a few ascending
/// anchors (its infimum, built from the shared stage primitives, plus
/// interior points sized exactly via `RepeatedWire::new`); lookups take
/// the largest anchor at or below the route. Comparisons never cross a
/// class boundary — the per-segment sizing saw-tooths there. Routes
/// shorter than the first class-1 anchor get the zero floor; routes
/// beyond [`MAX_CLASS`] classes are sized exactly (both are rare
/// extremes).
struct HtreeStair {
    /// Anchors of class `k` at index `k − 1` (`k = 1..=MAX_CLASS`), each
    /// `(length, floor)` ascending within its class.
    classes: Vec<Vec<(f64, RepeatedWire)>>,
}

impl HtreeStair {
    fn new(tech: &TechnologyParams) -> Self {
        let vdd = tech.vdd.value();
        // Class 1 covers everything from micron-scale subarrray grids up
        // to the repeater pitch: log-spaced anchors (~26 % steps), sized
        // exactly (ceil(len/S) == 1 for all of them).
        let class1 = (0..CLASS1_ANCHORS)
            .map(|i| {
                let len = 2.0e-6 * (SEGMENT / 2.0e-6).powf(i as f64 / (CLASS1_ANCHORS - 1) as f64);
                (len, RepeatedWire::new(tech, len))
            })
            .collect();
        let mut classes = vec![class1];
        for k in 2..=MAX_CLASS {
            let mut anchors = Vec::with_capacity(CLASS_ANCHORS);
            // The infimum of class k — k segments of ((k−1)/k)·SEGMENT —
            // is not reachable by `RepeatedWire::new` (that length ceils
            // into class k−1), so build it from the stage primitives.
            let seg_len = SEGMENT * ((k - 1) as f64 / k as f64);
            let seg = Wire::global(tech, seg_len);
            let drive = drive_load(tech, seg.capacitance, seg.resistance, vdd);
            let segments = k as f64;
            anchors.push((
                SEGMENT * (k - 1) as f64,
                RepeatedWire {
                    delay: segments * (drive.delay + seg.elmore_delay()),
                    energy: segments * (drive.energy + 0.0),
                    leakage: segments * drive.leakage,
                },
            ));
            for j in 1..CLASS_ANCHORS {
                let len = SEGMENT * ((k - 1) as f64 + j as f64 / CLASS_ANCHORS as f64);
                anchors.push((len, RepeatedWire::new(tech, len)));
            }
            classes.push(anchors);
        }
        Self { classes }
    }

    /// A floor for `RepeatedWire::new(tech, length)`.
    fn floor(&self, tech: &TechnologyParams, length: f64) -> RepeatedWire {
        if length <= 0.0 {
            return RepeatedWire::default();
        }
        // Mirror `RepeatedWire::new`'s class computation exactly.
        let class = (length / SEGMENT).ceil().max(1.0) as usize;
        if class > MAX_CLASS {
            // Absurdly long route (> 32 mm): size it exactly rather than
            // extrapolate — these candidates are pruned immediately anyway.
            return RepeatedWire::new(tech, length);
        }
        let anchors = &self.classes[class - 1];
        match anchors.partition_point(|&(anchor_len, _)| anchor_len <= length) {
            0 => RepeatedWire::default(),
            i => anchors[i - 1].1,
        }
    }
}

/// Process-wide stair cache, keyed by the node's feature-size bit pattern
/// (the technology lookup is a pure function of the node, so equal keys
/// mean equal parameters). Built once per node, shared by every
/// design-space pass of every study.
fn stair_for(tech: &TechnologyParams) -> Arc<HtreeStair> {
    static STAIRS: OnceLock<RwLock<HashMap<u64, Arc<HtreeStair>>>> = OnceLock::new();
    let stairs = STAIRS.get_or_init(|| RwLock::new(HashMap::new()));
    let key = tech.feature_size.value().to_bits();
    if let Some(stair) = stairs.read().expect("stair cache poisoned").get(&key) {
        return Arc::clone(stair);
    }
    Arc::clone(
        stairs
            .write()
            .expect("stair cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(HtreeStair::new(tech))),
    )
}

/// Row-axis partial terms: everything in the model that depends on `rows`
/// (and on nothing else geometric).
#[derive(Clone, Copy)]
struct RowTerms {
    rows_f: f64,
    array_height: f64,
    decoder_delay: f64,
    decoder_energy: f64,
    decoder_leakage: f64,
    decoder_width_f: f64,
    bl_capacitance: f64,
    t_bl: f64,
    /// `sa.energy + sa_bias_current · vdd · t_bl_single` — the per-column
    /// inner factor of the sense energy.
    e_sense_inner: f64,
}

/// Column-axis partial terms: everything that depends on `cols` alone.
#[derive(Clone, Copy)]
struct ColTerms {
    cols_f: f64,
    array_width: f64,
    wl_read_delay: f64,
    wl_read_energy: f64,
    wl_read_leakage: f64,
    wl_read_width_f: f64,
    wl_write_delay: f64,
    wl_write_energy: f64,
}

/// Mux-axis partial terms: the column decoder.
#[derive(Clone, Copy)]
struct MuxTerms {
    col_decoder_energy: f64,
    col_decoder_leakage: f64,
}

/// Memoized H-tree floor for one grid slot: the per-access
/// delay/energy/leakage terms `Bank::compose` derives from the routed
/// grid, with the repeated-wire characterization floored by the
/// [`HtreeStair`]. Keyed by the subarray count the route was computed
/// for, so a context accidentally reused across capacities recomputes
/// instead of serving a stale route.
#[derive(Clone, Copy)]
struct HtreeTerms {
    total_subarrays: usize,
    delay: f64,
    /// `htree.energy · 0.25 · 0.5 · (addr_bits + data_bits)` — identical
    /// for reads and writes in the model.
    access_energy: f64,
    /// `htree.leakage · data_bits · 0.5`.
    leakage: f64,
}

/// Per-pass bound evaluator for one `(cell, technology, programming depth)`
/// triple — exactly the inputs that are fixed across a design-space scan.
///
/// Build one with [`BoundContext::new`] at the top of a scan, then call
/// [`BoundContext::score_bound`] per `(candidate, target)`.
pub struct BoundContext {
    rows: [RowTerms; ROW_CHOICES.len()],
    cols: [ColTerms; COL_CHOICES.len()],
    muxes: [MuxTerms; MUX_CHOICES.len()],
    /// Per-slot H-tree memo (single-threaded: one context per DSE pass).
    htree: RefCell<[Option<HtreeTerms>; ROW_CHOICES.len() * COL_CHOICES.len() * MUX_CHOICES.len()]>,
    /// Shared per-node repeated-wire floor table.
    stair: Arc<HtreeStair>,
    tech: TechnologyParams,
    /// `addr_bits + data_bits` of the H-tree energy model.
    addr_plus_data_bits: f64,
    /// `word_bits as f64` (the H-tree carries this many data wires).
    data_bits: f64,
    f: f64,
    f2: f64,
    vdd: f64,
    phases: f64,
    /// `sa.delay · phases`, the sense-resolution latency term.
    sa_delay_phases: f64,
    t_mux_out: f64,
    driver_delay: f64,
    /// The (MLC-scaled) programming pulse.
    pulse: f64,
    v_read: f64,
    bl_swing_v: f64,
    i_cell: f64,
    all_cols_swing: bool,
    destructive: bool,
    /// `cell.write_energy_per_cell()`.
    wepc: f64,
    mlc_write_scale: f64,
    supply_efficiency: f64,
    driver_energy: f64,
    v_write: f64,
    cell_leakage: f64,
    /// `sa.leakage + driver.leakage`.
    sa_driver_leak: f64,
    pre_leakage: f64,
    /// `sa.area_f2 + driver.area_f2`.
    sa_driver_area: f64,
    pre_area: f64,
}

impl BoundContext {
    /// Precomputes the per-axis model tables for one design-space pass.
    ///
    /// Mirrors the exact expressions of
    /// [`Subarray::characterize`](crate::subarray::Subarray::characterize)
    /// and [`Bank::compose`](crate::bank::Bank::compose) — any change there
    /// must be reflected here, which the bound-exactness proptest in
    /// `tests/prune_equivalence.rs` enforces.
    pub fn new(
        tech: &TechnologyParams,
        cell: &CellDefinition,
        bits_per_cell: BitsPerCell,
        word_bits: u64,
    ) -> Self {
        let f = tech.feature_size.value();
        let vdd = tech.vdd.value();
        let levels = bits_per_cell.levels() as f64;
        let mlc = bits_per_cell.bits() > 1;
        let (cell_w, cell_h) = cell_pitch(tech, cell);
        let gate_per_cell = access_gate_cap(tech, cell);
        let drain_per_cell = access_drain_cap(tech, cell);
        let v_wl_read = wordline_read_voltage(tech, cell);
        let v_wl_write = wordline_write_voltage(tech, cell);
        let i_cell = cell.read.cell_current.value().max(1.0e-7);
        let (sense_margin_v, swing_fraction) = sense_window(cell.read.scheme);
        let margin_scale = if mlc { levels / 2.0 } else { 1.0 };
        let phases = bits_per_cell.bits() as f64;
        let sa = SenseAmp::new(tech, cell.read.scheme);
        let pre = Precharger::new(tech);
        let driver = WriteDriver::new(tech, cell.write.current.value(), cell.write.voltage.value());
        let sa_bias = sa_bias_current(cell.read.scheme);
        let min_sense = cell.read.min_sense_time.value();

        let rows = std::array::from_fn(|row_idx| {
            let rows = ROW_CHOICES[row_idx];
            let array_height = rows as f64 * cell_h;
            let bl = Wire::local(tech, array_height).with_load(rows as f64 * drain_per_cell);
            let decoder = Decoder::new(tech, rows);
            let t_develop = bl.capacitance * sense_margin_v * margin_scale / i_cell;
            let t_bl_single = min_sense + t_develop + bl.elmore_delay();
            RowTerms {
                rows_f: rows as f64,
                array_height,
                decoder_delay: decoder.delay,
                decoder_energy: decoder.energy,
                decoder_leakage: decoder.leakage,
                decoder_width_f: decoder.total_width_f,
                bl_capacitance: bl.capacitance,
                t_bl: t_bl_single * phases,
                e_sense_inner: sa.energy + sa_bias * vdd * t_bl_single,
            }
        });
        let cols = std::array::from_fn(|col_idx| {
            let cols = COL_CHOICES[col_idx];
            let array_width = cols as f64 * cell_w;
            let wl = Wire::local(tech, array_width).with_load(cols as f64 * gate_per_cell);
            let wl_read = drive_load(tech, wl.capacitance, wl.resistance, v_wl_read);
            let wl_write = drive_load(tech, wl.capacitance, wl.resistance, v_wl_write);
            ColTerms {
                cols_f: cols as f64,
                array_width,
                wl_read_delay: wl_read.delay,
                wl_read_energy: wl_read.energy,
                wl_read_leakage: wl_read.leakage,
                wl_read_width_f: wl_read.total_width_f,
                wl_write_delay: wl_write.delay,
                wl_write_energy: wl_write.energy,
            }
        });
        let muxes = std::array::from_fn(|mux_idx| {
            let col_decoder = Decoder::new(tech, MUX_CHOICES[mux_idx].max(2));
            MuxTerms {
                col_decoder_energy: col_decoder.energy,
                col_decoder_leakage: col_decoder.leakage,
            }
        });

        #[allow(clippy::cast_precision_loss)]
        let data_bits = word_bits as f64;
        Self {
            rows,
            cols,
            muxes,
            htree: RefCell::new([None; ROW_CHOICES.len() * COL_CHOICES.len() * MUX_CHOICES.len()]),
            stair: stair_for(tech),
            tech: *tech,
            addr_plus_data_bits: 32.0 + data_bits,
            data_bits,
            f,
            f2: f * f,
            vdd,
            phases,
            sa_delay_phases: sa.delay * phases,
            t_mux_out: 1.5 * tech.fo4_delay,
            driver_delay: driver.delay,
            pulse: cell.write.effective_pulse().value() * if mlc { levels - 1.0 } else { 1.0 },
            v_read: cell.read.voltage.value(),
            bl_swing_v: cell.read.voltage.value() * swing_fraction,
            i_cell,
            all_cols_swing: all_columns_swing(cell.read.scheme),
            destructive: cell.read.scheme.is_destructive(),
            wepc: cell.write_energy_per_cell().value(),
            mlc_write_scale: if mlc { levels - 1.0 } else { 1.0 },
            supply_efficiency: driver.supply_efficiency,
            driver_energy: driver.energy,
            v_write: cell.write.voltage.value(),
            cell_leakage: cell.cell_leakage.value(),
            sa_driver_leak: sa.leakage + driver.leakage,
            pre_leakage: pre.leakage,
            sa_driver_area: sa.area_f2 + driver.area_f2,
            pre_area: pre.area_f2,
        }
    }

    /// Lower bound on `bank_score(org, target)` for the candidate at grid
    /// slot `slot` (as produced by the DSE enumeration): exact subarray
    /// terms plus the stair-floored H-tree (see the module docs). For
    /// [`OptimizationTarget::Area`] the bound equals the true score
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is outside the DSE grid.
    #[allow(clippy::cast_precision_loss)]
    pub fn score_bound(&self, org: &Organization, slot: usize, target: OptimizationTarget) -> f64 {
        let mux_idx = slot % MUX_CHOICES.len();
        let col_idx = (slot / MUX_CHOICES.len()) % COL_CHOICES.len();
        let row_idx = slot / (MUX_CHOICES.len() * COL_CHOICES.len());
        let r = &self.rows[row_idx];
        let c = &self.cols[col_idx];
        let m = &self.muxes[mux_idx];
        let sensed_f = (org.cols / org.mux) as f64;
        let active_f = org.active_subarrays as f64;
        match target {
            OptimizationTarget::ReadLatency => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                2.0 * ht.delay + self.sub_read_latency(r, c)
            }
            OptimizationTarget::WriteLatency => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                2.0 * ht.delay + self.sub_write_latency(r, c)
            }
            OptimizationTarget::ReadEnergy => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                active_f * self.sub_read_energy(r, c, m, sensed_f) + ht.access_energy
            }
            OptimizationTarget::WriteEnergy => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                active_f * self.sub_write_energy(r, c, m, sensed_f) + ht.access_energy
            }
            OptimizationTarget::ReadEdp => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                (active_f * self.sub_read_energy(r, c, m, sensed_f) + ht.access_energy)
                    * (2.0 * ht.delay + self.sub_read_latency(r, c))
            }
            OptimizationTarget::WriteEdp => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                (active_f * self.sub_write_energy(r, c, m, sensed_f) + ht.access_energy)
                    * (2.0 * ht.delay + self.sub_write_latency(r, c))
            }
            OptimizationTarget::Area => self.bank_area_mm2(r, c, org, sensed_f),
            OptimizationTarget::Leakage => {
                let ht = self.htree_terms(org, slot, r, c, sensed_f);
                let sub_leak = self.sub_leakage(r, c, m, sensed_f);
                let total_f = org.total_subarrays as f64;
                total_f * sub_leak + ht.leakage + 0.02 * total_f * sub_leak
            }
        }
    }

    /// The memoized H-tree floor for one grid slot: the exact route length
    /// (from the bit-exact subarray footprint and `Bank::compose`'s grid
    /// derivation) looked up in the [`HtreeStair`]. The floored
    /// repeated-wire characterization is then fed through `Bank::compose`'s
    /// exact per-access expressions — monotone, so the result bounds the
    /// true terms from below.
    #[allow(clippy::cast_precision_loss)]
    fn htree_terms(
        &self,
        org: &Organization,
        slot: usize,
        r: &RowTerms,
        c: &ColTerms,
        sensed_f: f64,
    ) -> HtreeTerms {
        if let Some(memo) = self.htree.borrow()[slot] {
            if memo.total_subarrays == org.total_subarrays {
                return memo;
            }
        }
        let (width, height) = self.sub_footprint(r, c, sensed_f);
        let nx = (org.total_subarrays as f64).sqrt().ceil() as usize;
        let ny = org.total_subarrays.div_ceil(nx);
        let grid_w = nx as f64 * width;
        let grid_h = ny as f64 * height;
        let route_len = 0.5 * (grid_w + grid_h);
        let htree = self.stair.floor(&self.tech, route_len);
        let terms = HtreeTerms {
            total_subarrays: org.total_subarrays,
            delay: htree.delay,
            access_energy: htree.energy * 0.25 * 0.5 * self.addr_plus_data_bits,
            leakage: htree.leakage * self.data_bits * 0.5,
        };
        self.htree.borrow_mut()[slot] = Some(terms);
        terms
    }

    /// [`Self::score_bound`] for an organization whose grid slot is not at
    /// hand — resolves the choice-array indices first. Test/diagnostic
    /// convenience; returns `None` for off-grid geometries.
    pub fn score_bound_for(&self, org: &Organization, target: OptimizationTarget) -> Option<f64> {
        let row_idx = ROW_CHOICES.iter().position(|&r| r == org.rows)?;
        let col_idx = COL_CHOICES.iter().position(|&c| c == org.cols)?;
        let mux_idx = MUX_CHOICES.iter().position(|&m| m == org.mux)?;
        let slot = (row_idx * COL_CHOICES.len() + col_idx) * MUX_CHOICES.len() + mux_idx;
        Some(self.score_bound(org, slot, target))
    }

    /// Exact `Subarray::read_latency` (the bank adds only H-tree delay).
    fn sub_read_latency(&self, r: &RowTerms, c: &ColTerms) -> f64 {
        r.decoder_delay + c.wl_read_delay + r.t_bl + self.sa_delay_phases + self.t_mux_out
    }

    /// Exact `Subarray::write_latency`.
    fn sub_write_latency(&self, r: &RowTerms, c: &ColTerms) -> f64 {
        r.decoder_delay + c.wl_write_delay + self.driver_delay + self.pulse
    }

    /// Exact `Subarray::read_energy`.
    fn sub_read_energy(&self, r: &RowTerms, c: &ColTerms, m: &MuxTerms, sensed_f: f64) -> f64 {
        let swinging_cols = if self.all_cols_swing {
            c.cols_f
        } else {
            sensed_f
        };
        let e_bitlines =
            swinging_cols * r.bl_capacitance * self.v_read * self.bl_swing_v * self.phases;
        let e_cells = swinging_cols * self.v_read * self.i_cell * r.t_bl;
        let e_sense = sensed_f * r.e_sense_inner * self.phases;
        let e_restore = if self.destructive {
            c.cols_f * self.wepc / self.supply_efficiency
        } else {
            0.0
        };
        r.decoder_energy
            + m.col_decoder_energy
            + c.wl_read_energy
            + e_bitlines
            + e_cells
            + e_sense
            + e_restore
            + self.t_mux_out * 0.0
            + sensed_f * 0.5e-15 * self.vdd * self.vdd
    }

    /// Exact `Subarray::write_energy`.
    fn sub_write_energy(&self, r: &RowTerms, c: &ColTerms, m: &MuxTerms, sensed_f: f64) -> f64 {
        let e_write_cells = sensed_f * self.wepc * self.mlc_write_scale / self.supply_efficiency;
        let e_write_bitlines =
            sensed_f * r.bl_capacitance * self.v_write * self.v_write / self.supply_efficiency;
        r.decoder_energy
            + m.col_decoder_energy
            + c.wl_write_energy / self.supply_efficiency
            + e_write_bitlines
            + e_write_cells
            + sensed_f * self.driver_energy
    }

    /// Exact `Subarray::leakage`.
    fn sub_leakage(&self, r: &RowTerms, c: &ColTerms, m: &MuxTerms, sensed_f: f64) -> f64 {
        let cell_leak = r.rows_f * c.cols_f * self.cell_leakage;
        let wl_driver_leak = r.rows_f * c.wl_read_leakage * 0.06;
        let periphery_leak = r.decoder_leakage
            + m.col_decoder_leakage
            + sensed_f * self.sa_driver_leak
            + c.cols_f * self.pre_leakage;
        cell_leak + wl_driver_leak + periphery_leak
    }

    /// Exact `Subarray::{width, height}` — the cell array plus the decoder
    /// strip and the SA/driver/precharge strips.
    fn sub_footprint(&self, r: &RowTerms, c: &ColTerms, sensed_f: f64) -> (f64, f64) {
        let decoder_area = (r.decoder_width_f + r.rows_f * c.wl_read_width_f) * 1.5 * self.f2;
        let decoder_strip_w = decoder_area / r.array_height.max(self.f);
        let sa_strip_h = sensed_f * self.sa_driver_area * self.f2 / c.array_width.max(self.f);
        let pre_strip_h = c.cols_f * self.pre_area * self.f2 / c.array_width.max(self.f);
        let width = c.array_width + decoder_strip_w;
        let height = r.array_height + sa_strip_h + pre_strip_h;
        (width, height)
    }

    /// Exact `Bank::area` in mm² — the subarray footprint tiled on the
    /// same near-square grid `Bank::compose` uses, with the same 5 %
    /// routing overhead. The H-tree has no separate area term in the
    /// model.
    #[allow(clippy::cast_precision_loss)]
    fn bank_area_mm2(&self, r: &RowTerms, c: &ColTerms, org: &Organization, sensed_f: f64) -> f64 {
        let (width, height) = self.sub_footprint(r, c, sensed_f);
        let nx = (org.total_subarrays as f64).sqrt().ceil() as usize;
        let ny = org.total_subarrays.div_ceil(nx);
        let grid_w = nx as f64 * width;
        let grid_h = ny as f64 * height;
        SquareMillimeters::from_square_meters(grid_w * grid_h * 1.05).value()
    }
}

/// Final incumbent chains of one target's completed design-space pass —
/// what [`IncumbentStore`] records per `(design point, target)` and what a
/// later identical pass seeds its scan with.
///
/// A seed is **not** a bare score: it carries the winning [`Bank`] of each
/// chain, so a seeded scan behaves exactly as if it had already visited
/// the winning candidate. Under the scan's first-strictly-better tie rule
/// no later candidate can displace an equal-scoring seed, and no candidate
/// scores strictly below the recorded minimum — so the seeded scan's
/// winners are byte-identical to a cold scan's, while the pre-tightened
/// incumbent lets the score bounds prune every candidate that cannot beat
/// the *final* winner (instead of only the incumbent-so-far).
#[derive(Debug, Clone)]
pub(crate) struct TargetSeed {
    /// Final qualified chain (candidates meeting the minimum area
    /// efficiency), which alone drives pruning decisions.
    pub(crate) best: Option<(f64, Bank)>,
    /// Final unconstrained fallback chain. Only authoritative when `best`
    /// is `None` — in that case the recording pass pruned nothing (an
    /// unqualified target vetoes every skip), so the chain is the full
    /// deterministic scan's. When `best` is `Some` the winner never reads
    /// this chain.
    pub(crate) best_unconstrained: Option<(f64, Bank)>,
}

/// Everything the design-space pass's candidate set and scoring depend on,
/// as a hashable key: the cell (by fingerprint, verified against the
/// stored cell on lookup), the technology node, the programming depth, the
/// capacity, the word width, and the target. Two passes agreeing on all of
/// these walk identical candidates to identical scores — the condition
/// under which seeding preserves byte-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SeedKey {
    cell: u64,
    node_bits: u64,
    bits_per_cell: BitsPerCell,
    capacity_bytes: u64,
    word_bits: u64,
    target: OptimizationTarget,
}

impl SeedKey {
    fn new(
        cell: &CellDefinition,
        tech: &TechnologyParams,
        config: &crate::ArrayConfig,
        target: OptimizationTarget,
    ) -> Self {
        Self {
            cell: cell.fingerprint(),
            node_bits: tech.feature_size.value().to_bits(),
            bits_per_cell: config.bits_per_cell,
            capacity_bytes: config.capacity.bytes(),
            word_bits: config.word_bits,
            target,
        }
    }
}

/// One recorded seed plus the owning cell, stored so lookups can prove the
/// 64-bit fingerprint key really resolved to their cell (a collision
/// degrades to an unseeded scan, never to another cell's incumbents).
struct SeedEntry {
    cell: CellDefinition,
    seed: TargetSeed,
}

/// Counters of an [`IncumbentStore`], captured by [`IncumbentStore::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeedStats {
    /// `(design point, target)` winner chains recorded.
    pub recorded: u64,
    /// Target scans that started from a recorded seed instead of cold.
    pub seeded_scans: u64,
}

impl SeedStats {
    /// Counters accumulated since an `earlier` snapshot of the same store.
    /// Saturating, like [`CacheStats::since`](crate::cache::CacheStats).
    pub fn since(&self, earlier: Self) -> Self {
        Self {
            recorded: self.recorded.saturating_sub(earlier.recorded),
            seeded_scans: self.seeded_scans.saturating_sub(earlier.seeded_scans),
        }
    }
}

/// Cross-study store of branch-and-bound winner incumbents.
///
/// A multi-study queue whose studies overlap in design points — same cell,
/// technology node, programming depth, capacity, and word width — re-runs
/// identical design-space passes from cold incumbents: each pass prunes
/// only against the best candidate *seen so far*, even though an earlier
/// study already proved the final winner. Threading one `IncumbentStore`
/// through the passes (via
/// [`characterize_targets_seeded`](crate::characterize_targets_seeded) or
/// the core scheduler's seeded queue) records each completed pass's final
/// incumbent chains and seeds later identical passes with them, so the
/// bounds prune against the final winner from the very first candidate.
///
/// Seeding only ever *tightens* the incumbent a sound lower bound is
/// compared against, and a seed carries the recorded winning bank itself,
/// so seeded winners are byte-identical to cold winners (proptested in
/// `tests/prune_equivalence.rs`) — the prune rate just climbs. Entries are
/// write-once; recording is idempotent and concurrent recorders of an
/// identical pass store identical chains.
#[derive(Default)]
pub struct IncumbentStore {
    entries: RwLock<HashMap<SeedKey, Arc<SeedEntry>>>,
    recorded: std::sync::atomic::AtomicU64,
    seeded_scans: std::sync::atomic::AtomicU64,
}

impl IncumbentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Recording/seeding counters so far.
    pub fn stats(&self) -> SeedStats {
        use std::sync::atomic::Ordering;
        SeedStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            seeded_scans: self.seeded_scans.load(Ordering::Relaxed),
        }
    }

    /// Number of `(design point, target)` seeds recorded.
    pub fn len(&self) -> usize {
        self.entries.read().expect("seed store poisoned").len()
    }

    /// `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded seed for an exactly-matching design point, or `None`
    /// when no identical pass completed yet (or the fingerprint collided
    /// with a different cell — verified, so a collision can only cost the
    /// speedup, never correctness).
    pub(crate) fn lookup(
        &self,
        cell: &CellDefinition,
        tech: &TechnologyParams,
        config: &crate::ArrayConfig,
        target: OptimizationTarget,
    ) -> Option<TargetSeed> {
        let key = SeedKey::new(cell, tech, config, target);
        let entry = self
            .entries
            .read()
            .expect("seed store poisoned")
            .get(&key)
            .map(Arc::clone)?;
        if entry.cell != *cell {
            return None;
        }
        self.seeded_scans
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(entry.seed.clone())
    }

    /// Records a completed pass's final chains for one target. First
    /// writer wins; an existing entry is left untouched (identical passes
    /// record identical chains, so which racer lands is unobservable).
    pub(crate) fn record(
        &self,
        cell: &CellDefinition,
        tech: &TechnologyParams,
        config: &crate::ArrayConfig,
        target: OptimizationTarget,
        seed: TargetSeed,
    ) {
        let key = SeedKey::new(cell, tech, config, target);
        let mut entries = self.entries.write().expect("seed store poisoned");
        if let std::collections::hash_map::Entry::Vacant(vacant) = entries.entry(key) {
            vacant.insert(Arc::new(SeedEntry {
                cell: cell.clone(),
                seed,
            }));
            self.recorded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for IncumbentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("IncumbentStore")
            .field("entries", &self.len())
            .field("recorded", &stats.recorded)
            .field("seeded_scans", &stats.seeded_scans)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::Bank;
    use crate::subarray::Subarray;
    use crate::technology::lookup;
    use crate::{dse, ArrayConfig};
    use nvmx_celldb::{custom, tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::{Capacity, Meters};

    fn score(bank: &Bank, target: OptimizationTarget) -> f64 {
        match target {
            OptimizationTarget::ReadLatency => bank.read_latency,
            OptimizationTarget::WriteLatency => bank.write_latency,
            OptimizationTarget::ReadEnergy => bank.read_energy,
            OptimizationTarget::WriteEnergy => bank.write_energy,
            OptimizationTarget::ReadEdp => bank.read_energy * bank.read_latency,
            OptimizationTarget::WriteEdp => bank.write_energy * bank.write_latency,
            OptimizationTarget::Area => SquareMillimeters::from_square_meters(bank.area).value(),
            OptimizationTarget::Leakage => bank.leakage,
        }
    }

    fn assert_sound(cell: &nvmx_celldb::CellDefinition, depth: BitsPerCell, node_nm: f64) {
        let config = ArrayConfig::new(Capacity::from_mebibytes(2))
            .with_bits_per_cell(depth)
            .with_node(Meters::from_nano(node_nm));
        let tech = lookup(config.node);
        let bounds = BoundContext::new(&tech, cell, depth, config.word_bits);
        for org in dse::enumerate_organizations(&config) {
            let sub = Subarray::characterize(&tech, cell, org.rows, org.cols, org.mux, depth);
            let bank = Bank::compose(&tech, sub, org, config.word_bits);
            for target in OptimizationTarget::ALL {
                let bound = bounds.score_bound_for(&org, target).expect("on-grid");
                let truth = score(&bank, target);
                assert!(
                    bound <= truth,
                    "{}: bound {bound:e} exceeds true score {truth:e} for {target} at {org}",
                    cell.name
                );
                if target == OptimizationTarget::Area {
                    assert_eq!(
                        bound.to_bits(),
                        truth.to_bits(),
                        "Area bound must be exact at {org}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounds_never_exceed_true_scores_for_tentpoles() {
        for class in [
            TechnologyClass::Stt,
            TechnologyClass::Rram,
            TechnologyClass::Pcm,
            TechnologyClass::FeFet,
            TechnologyClass::FeRam,
        ] {
            for flavor in [CellFlavor::Optimistic, CellFlavor::Pessimistic] {
                let cell = tentpole::tentpole_cell(class, flavor).unwrap();
                assert_sound(&cell, BitsPerCell::Slc, 22.0);
                if cell.supports(BitsPerCell::Mlc2) {
                    assert_sound(&cell, BitsPerCell::Mlc2, 22.0);
                }
            }
        }
    }

    #[test]
    fn bounds_are_sound_for_sram() {
        assert_sound(&custom::sram_16nm(), BitsPerCell::Slc, 16.0);
    }

    #[test]
    fn off_grid_geometries_have_no_bound() {
        let cell = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap();
        let tech = lookup(Meters::from_nano(22.0));
        let bounds = BoundContext::new(&tech, &cell, BitsPerCell::Slc, 128);
        let org = Organization {
            rows: 100,
            cols: 256,
            mux: 1,
            active_subarrays: 1,
            total_subarrays: 64,
        };
        assert!(bounds
            .score_bound_for(&org, OptimizationTarget::Area)
            .is_none());
    }

    #[test]
    fn htree_memo_recomputes_when_the_subarray_count_changes() {
        // The per-slot H-tree memo is keyed by the subarray count, so a
        // context reused across capacities (not the intended pattern, but
        // nothing forbids it) must recompute routes instead of serving the
        // other capacity's — bounds stay sound either way, and the Area
        // bound stays exact.
        let cell = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap();
        let tech = lookup(Meters::from_nano(22.0));
        let bounds = BoundContext::new(&tech, &cell, BitsPerCell::Slc, 128);
        for mib in [2u64, 8, 2] {
            let config = ArrayConfig::new(Capacity::from_mebibytes(mib));
            for org in dse::enumerate_organizations(&config).into_iter().take(8) {
                let sub = Subarray::characterize(
                    &tech,
                    &cell,
                    org.rows,
                    org.cols,
                    org.mux,
                    BitsPerCell::Slc,
                );
                let bank = Bank::compose(&tech, sub, org, config.word_bits);
                for target in OptimizationTarget::ALL {
                    let bound = bounds.score_bound_for(&org, target).unwrap();
                    let truth = score(&bank, target);
                    assert!(
                        bound <= truth,
                        "stale route served for {target} at {org} ({mib} MiB): \
                         bound {bound:e} vs {truth:e}"
                    );
                }
                let area_bound = bounds
                    .score_bound_for(&org, OptimizationTarget::Area)
                    .unwrap();
                assert_eq!(
                    area_bound.to_bits(),
                    score(&bank, OptimizationTarget::Area).to_bits(),
                    "stale footprint served at {org} ({mib} MiB)"
                );
            }
        }
    }

    #[test]
    fn stair_floors_repeated_wire_over_dense_lengths() {
        // The within-class monotonicity the stair relies on, checked
        // against the real `RepeatedWire` across a dense log sweep of
        // route lengths (sub-anchor tiny routes through multi-centimeter
        // absurdities, crossing every class boundary in range).
        for node_nm in [16.0, 22.0] {
            let tech = lookup(Meters::from_nano(node_nm));
            let stair = stair_for(&tech);
            for i in 0..4000 {
                let len = 1.0e-6 * (40.0e-3f64 / 1.0e-6).powf(f64::from(i) / 3999.0);
                let floor = stair.floor(&tech, len);
                let truth = RepeatedWire::new(&tech, len);
                assert!(
                    floor.delay <= truth.delay
                        && floor.energy <= truth.energy
                        && floor.leakage <= truth.leakage,
                    "stair exceeds RepeatedWire at {len:e} m ({node_nm} nm): \
                     {floor:?} vs {truth:?}"
                );
            }
        }
    }
}
