//! Distributed-RC wire models: Elmore delay for array-internal lines and
//! repeated global wires for the bank H-tree.

use crate::gates::drive_load;
use crate::technology::TechnologyParams;

/// A distributed RC line of a given physical length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wire {
    /// Total series resistance, Ω.
    pub resistance: f64,
    /// Total capacitance to ground, F.
    pub capacitance: f64,
    /// Physical length, m.
    pub length: f64,
}

impl Wire {
    /// A local-layer wire (wordlines, bitlines) of `length` meters.
    pub fn local(tech: &TechnologyParams, length: f64) -> Self {
        Self {
            resistance: tech.wire_r_per_m * length,
            capacitance: tech.wire_c_per_m * length,
            length,
        }
    }

    /// A global-layer wire (H-tree trunks) of `length` meters.
    pub fn global(tech: &TechnologyParams, length: f64) -> Self {
        Self {
            resistance: tech.global_wire_r_per_m * length,
            capacitance: tech.global_wire_c_per_m * length,
            length,
        }
    }

    /// Elmore delay of the distributed line itself (0.38·R·C), excluding
    /// the driver.
    pub fn elmore_delay(&self) -> f64 {
        0.38 * self.resistance * self.capacitance
    }

    /// Adds lumped capacitance (e.g. one gate per cell pitch along a
    /// wordline).
    #[must_use]
    pub fn with_load(mut self, extra_cap: f64) -> Self {
        self.capacitance += extra_cap;
        self
    }
}

/// Delay/energy/leakage of a repeated global wire of `length` meters
/// carrying one bit transition at supply swing.
///
/// Repeater insertion is modeled at a fixed optimal pitch; delay becomes
/// linear in length (≈50–100 ps/mm at these nodes) rather than quadratic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RepeatedWire {
    /// Total propagation delay, s.
    pub delay: f64,
    /// Energy per bit transition, J.
    pub energy: f64,
    /// Leakage of all repeaters on the line, W.
    pub leakage: f64,
}

impl RepeatedWire {
    /// Characterizes a repeated global wire.
    pub fn new(tech: &TechnologyParams, length: f64) -> Self {
        if length <= 0.0 {
            return Self::default();
        }
        // Repeater every ~0.5 mm.
        const SEGMENT: f64 = 0.5e-3;
        let segments = (length / SEGMENT).ceil().max(1.0);
        let seg_len = length / segments;
        let seg = Wire::global(tech, seg_len);
        let vdd = tech.vdd.value();
        let drive = drive_load(tech, seg.capacitance, seg.resistance, vdd);
        Self {
            delay: segments * (drive.delay + seg.elmore_delay()),
            energy: segments * (drive.energy + 0.0), // wire C charged by driver stage
            leakage: segments * drive.leakage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::lookup;
    use nvmx_units::Meters;

    fn t22() -> TechnologyParams {
        lookup(Meters::from_nano(22.0))
    }

    #[test]
    fn elmore_is_quadratic_in_length() {
        let tech = t22();
        let w1 = Wire::local(&tech, 100.0e-6);
        let w2 = Wire::local(&tech, 200.0e-6);
        assert!((w2.elmore_delay() / w1.elmore_delay() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn local_bitline_delay_sanity() {
        // A 512-cell bitline at ~50 nm pitch ≈ 26 µm: RC delay ≪ 1 ns.
        let tech = t22();
        let w = Wire::local(&tech, 26.0e-6).with_load(512.0 * 0.05e-15);
        assert!(w.elmore_delay() < 0.2e-9, "{}", w.elmore_delay());
    }

    #[test]
    fn repeated_wire_is_roughly_linear() {
        let tech = t22();
        let d1 = RepeatedWire::new(&tech, 1.0e-3).delay;
        let d2 = RepeatedWire::new(&tech, 2.0e-3).delay;
        let ratio = d2 / d1;
        assert!((1.5..=2.5).contains(&ratio), "ratio {ratio}");
        // ~1 mm of repeated global wire: 30–300 ps.
        assert!((20.0e-12..400.0e-12).contains(&d1), "{d1}");
    }

    #[test]
    fn zero_length_is_free() {
        let tech = t22();
        let r = RepeatedWire::new(&tech, 0.0);
        assert_eq!(r.delay, 0.0);
        assert_eq!(r.energy, 0.0);
    }

    #[test]
    fn global_wire_is_faster_per_meter_than_local() {
        let tech = t22();
        let local = Wire::local(&tech, 1.0e-3);
        let global = Wire::global(&tech, 1.0e-3);
        assert!(global.resistance < local.resistance);
    }
}
