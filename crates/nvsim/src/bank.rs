//! Bank composition: a grid of subarrays joined by a repeated-wire H-tree,
//! with address broadcast and data return.

use crate::subarray::Subarray;
use crate::technology::TechnologyParams;
use crate::wire::RepeatedWire;

/// An internal array organization candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Organization {
    /// Rows per subarray.
    pub rows: usize,
    /// Columns per subarray.
    pub cols: usize,
    /// Column-mux degree.
    pub mux: usize,
    /// Subarrays activated per access (together they supply the word).
    pub active_subarrays: usize,
    /// Total subarrays in the bank.
    pub total_subarrays: usize,
}

impl Organization {
    /// Independent interleave groups (sets of subarrays that can serve
    /// different accesses concurrently).
    pub fn groups(&self) -> usize {
        (self.total_subarrays / self.active_subarrays).max(1)
    }
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{} mux{} ({} subarrays, {} active)",
            self.rows, self.cols, self.mux, self.total_subarrays, self.active_subarrays
        )
    }
}

/// Electrical characterization of a full bank.
#[derive(Debug, Clone, PartialEq)]
pub struct Bank {
    /// The organization characterized.
    pub organization: Organization,
    /// Per-subarray characterization this bank is built from.
    pub subarray: Subarray,
    /// Read latency (edge of bank to data out), s.
    pub read_latency: f64,
    /// Write latency, s.
    pub write_latency: f64,
    /// Read cycle time of one interleave group, s.
    pub read_cycle: f64,
    /// Write cycle time of one interleave group, s.
    pub write_cycle: f64,
    /// Energy per read access, J.
    pub read_energy: f64,
    /// Energy per write access, J.
    pub write_energy: f64,
    /// Bank standby leakage, W.
    pub leakage: f64,
    /// Total bank area, m².
    pub area: f64,
    /// Fraction of area in cells.
    pub area_efficiency: f64,
    /// Logical bits delivered per access.
    pub word_bits: u64,
    /// Sustainable random read bandwidth, bytes/s.
    pub read_bandwidth: f64,
    /// Sustainable random write bandwidth, bytes/s.
    pub write_bandwidth: f64,
}

/// Maximum interleave depth credited for bandwidth (queueing and bus limits
/// cap useful concurrency well below the raw group count).
const MAX_INTERLEAVE: f64 = 4.0;

impl Bank {
    /// Composes `org.total_subarrays` copies of `subarray` into a bank
    /// delivering `word_bits`-bit accesses.
    pub fn compose(
        tech: &TechnologyParams,
        subarray: Subarray,
        org: Organization,
        word_bits: u64,
    ) -> Self {
        // Near-square grid of subarrays.
        let nx = (org.total_subarrays as f64).sqrt().ceil() as usize;
        let ny = org.total_subarrays.div_ceil(nx);
        let grid_w = nx as f64 * subarray.width;
        let grid_h = ny as f64 * subarray.height;
        // Average route: half the half-perimeter (requests fan out from an
        // edge-center port).
        let route_len = 0.5 * (grid_w + grid_h);
        let htree = RepeatedWire::new(tech, route_len);

        // Address bus (~32 bits) in, `word_bits` data out; random data
        // switches ~25 % of wires per transfer, and the average access only
        // traverses half the worst-case route.
        let addr_bits = 32.0;
        let data_bits = word_bits as f64;
        let htree_read_energy = htree.energy * 0.25 * 0.5 * (addr_bits + data_bits);
        let htree_write_energy = htree.energy * 0.25 * 0.5 * (addr_bits + data_bits);
        // The tree carries data-bus-width wires of repeaters.
        let htree_leak = htree.leakage * data_bits * 0.5;

        let active = org.active_subarrays as f64;
        let read_latency = 2.0 * htree.delay + subarray.read_latency;
        let write_latency = 2.0 * htree.delay + subarray.write_latency;
        let read_cycle = subarray.read_cycle + htree.delay;
        let write_cycle = subarray.write_cycle + htree.delay;

        let interleave = (org.groups() as f64).min(MAX_INTERLEAVE);
        let word_bytes = data_bits / 8.0;
        let read_bandwidth = word_bytes / read_cycle * interleave;
        let write_bandwidth = word_bytes / write_cycle * interleave;

        let area = grid_w * grid_h * 1.05; // H-tree routing overhead
        let cell_area = org.total_subarrays as f64 * subarray.array_width * subarray.array_height;

        Self {
            organization: org,
            read_latency,
            write_latency,
            read_cycle,
            write_cycle,
            read_energy: active * subarray.read_energy + htree_read_energy,
            write_energy: active * subarray.write_energy + htree_write_energy,
            leakage: org.total_subarrays as f64 * subarray.leakage
                + htree_leak
                + 0.02 * org.total_subarrays as f64 * subarray.leakage, // global control
            area,
            area_efficiency: cell_area / area,
            word_bits,
            read_bandwidth,
            write_bandwidth,
            subarray,
        }
    }

    /// Total storage capacity, bits.
    pub fn capacity_bits(&self) -> u64 {
        self.organization.total_subarrays as u64 * self.subarray.capacity_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subarray::Subarray;
    use crate::technology::lookup;
    use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
    use nvmx_units::{BitsPerCell, Meters};

    fn bank_for(total: usize, active: usize) -> Bank {
        let tech = lookup(Meters::from_nano(22.0));
        let cell = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap();
        let sub = Subarray::characterize(&tech, &cell, 512, 1024, 8, BitsPerCell::Slc);
        let org = Organization {
            rows: 512,
            cols: 1024,
            mux: 8,
            active_subarrays: active,
            total_subarrays: total,
        };
        Bank::compose(&tech, sub, org, 128)
    }

    #[test]
    fn htree_adds_latency_with_size() {
        let small = bank_for(4, 1);
        let large = bank_for(256, 1);
        assert!(large.read_latency > small.read_latency);
        assert!(large.leakage > small.leakage);
        assert!(large.area > small.area);
    }

    #[test]
    fn capacity_scales_with_subarrays() {
        let b = bank_for(32, 2);
        assert_eq!(b.capacity_bits(), 32 * 512 * 1024);
    }

    #[test]
    fn bandwidth_uses_interleave_but_saturates() {
        let one_group = bank_for(4, 4);
        let many_groups = bank_for(32, 4);
        assert!(many_groups.read_bandwidth > one_group.read_bandwidth);
        let more_groups = bank_for(128, 4);
        // Interleave credit caps at MAX_INTERLEAVE: same bandwidth class
        // (area/latency second-order effects only).
        let ratio = more_groups.read_bandwidth / many_groups.read_bandwidth;
        assert!(ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn activating_more_subarrays_costs_energy() {
        let narrow = bank_for(32, 1);
        let wide = bank_for(32, 8);
        assert!(wide.read_energy > narrow.read_energy);
        assert!(wide.write_energy > narrow.write_energy);
    }

    #[test]
    fn groups_counted_correctly() {
        let org = Organization {
            rows: 1,
            cols: 1,
            mux: 1,
            active_subarrays: 4,
            total_subarrays: 32,
        };
        assert_eq!(org.groups(), 8);
    }

    #[test]
    fn gigabyte_class_read_bandwidth() {
        // A 2 MB STT bank must sustain GB/s-class reads (NVDLA needs it).
        let b = bank_for(32, 1);
        assert!(b.read_bandwidth > 1.0e9, "read bw {}", b.read_bandwidth);
    }
}
