//! An NVSim-class circuit-level memory-array simulator (paper Sec. II-B).
//!
//! Given a [`nvmx_celldb::CellDefinition`] from the cell
//! database and an [`ArrayConfig`] (capacity, word width, node, programming
//! depth, optimization target), this crate searches internal array
//! organizations — subarray geometry, column muxing, bank composition — and
//! returns the best [`ArrayCharacterization`]: read/write latency and energy,
//! leakage, area, bandwidth, and density.
//!
//! The modeling lineage is NVSim/CACTI: Horowitz gate delays, logical-effort
//! buffer chains, Elmore RC wires, repeated global H-trees, and
//! scheme-specific bitline sensing (voltage-differential SRAM, current-mode
//! resistive, FET-drain FeFET/CTT, destructive charge FeRAM).
//!
//! # Examples
//!
//! ```
//! use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
//! use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
//! use nvmx_units::{BitsPerCell, Capacity, Meters};
//!
//! # fn main() -> Result<(), nvmx_nvsim::CharacterizationError> {
//! let cell = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic)
//!     .expect("STT is always surveyed");
//! let config = ArrayConfig {
//!     capacity: Capacity::from_mebibytes(2),
//!     word_bits: 128,
//!     node: Meters::from_nano(22.0),
//!     bits_per_cell: BitsPerCell::Slc,
//!     target: OptimizationTarget::ReadEdp,
//! };
//! let array = characterize(&cell, &config)?;
//! assert!(array.read_latency.value() < 10.0e-9);
//! # Ok(())
//! # }
//! ```

// Every public item must explain itself — the circuit models only earn
// trust if each knob and output names its NVSim/CACTI lineage. CI builds
// the docs with `-D warnings`, so broken intra-doc links fail too.
#![deny(missing_docs)]

pub mod bank;
pub mod bounds;
pub mod cache;
pub mod components;
pub mod dse;
pub mod fsutil;
pub mod gates;
pub mod result;
pub mod store;
pub mod subarray;
pub mod technology;
pub mod wire;

pub use bank::Organization;
pub use bounds::{IncumbentStore, SeedStats};
pub use cache::{CacheStats, L2RejectClasses, SubarrayCache};
pub use result::{ArrayCharacterization, OptimizationTarget};
pub use store::{CharacterizationStore, StoreError, STORE_VERSION};

use nvmx_celldb::CellDefinition;
use nvmx_units::{BitsPerCell, Capacity, Meters};
use serde::{Deserialize, Serialize};

/// Array-level design request: everything except the cell itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Total storage capacity.
    pub capacity: Capacity,
    /// Access width in bits (e.g. 512 for a 64 B cache line).
    pub word_bits: u64,
    /// Process node for periphery and cell geometry.
    pub node: Meters,
    /// Programming depth.
    pub bits_per_cell: BitsPerCell,
    /// Optimization target for the organization search.
    pub target: OptimizationTarget,
}

impl ArrayConfig {
    /// A sensible starting configuration: `capacity` at 22 nm, 128-bit
    /// words, SLC, read-EDP optimized (the paper's default for buffers).
    pub fn new(capacity: Capacity) -> Self {
        Self {
            capacity,
            word_bits: 128,
            node: Meters::from_nano(22.0),
            bits_per_cell: BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
        }
    }

    /// Returns a copy with a different optimization target.
    #[must_use]
    pub fn with_target(mut self, target: OptimizationTarget) -> Self {
        self.target = target;
        self
    }

    /// Returns a copy with a different word width.
    #[must_use]
    pub fn with_word_bits(mut self, word_bits: u64) -> Self {
        self.word_bits = word_bits;
        self
    }

    /// Returns a copy with a different programming depth.
    #[must_use]
    pub fn with_bits_per_cell(mut self, bits_per_cell: BitsPerCell) -> Self {
        self.bits_per_cell = bits_per_cell;
        self
    }

    /// Returns a copy with a different process node.
    #[must_use]
    pub fn with_node(mut self, node: Meters) -> Self {
        self.node = node;
        self
    }
}

/// Errors from array characterization.
#[derive(Debug, Clone, PartialEq)]
pub enum CharacterizationError {
    /// The cell cannot be programmed at the requested depth.
    UnsupportedBitsPerCell {
        /// Cell name.
        cell: String,
        /// Requested depth.
        requested: BitsPerCell,
        /// Densest supported depth.
        supported: BitsPerCell,
    },
    /// No internal organization satisfies the request (capacity too small
    /// or absurdly large for the geometry space).
    NoValidOrganization {
        /// Cell name.
        cell: String,
        /// Requested capacity.
        capacity: Capacity,
    },
}

impl std::fmt::Display for CharacterizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsupportedBitsPerCell {
                cell,
                requested,
                supported,
            } => write!(
                f,
                "cell `{cell}` supports at most {supported} but {requested} was requested"
            ),
            Self::NoValidOrganization { cell, capacity } => {
                write!(f, "no valid organization for `{cell}` at {capacity}")
            }
        }
    }
}

impl std::error::Error for CharacterizationError {}

/// Characterizes the best array for `cell` under `config`.
///
/// # Errors
///
/// Returns [`CharacterizationError::UnsupportedBitsPerCell`] when the cell
/// cannot store `config.bits_per_cell`, and
/// [`CharacterizationError::NoValidOrganization`] when the geometry space
/// cannot realize the capacity.
pub fn characterize(
    cell: &CellDefinition,
    config: &ArrayConfig,
) -> Result<ArrayCharacterization, CharacterizationError> {
    dse::optimize(cell, config)
}

/// Characterizes `cell` under several optimization targets with **one**
/// shared design-space pass.
///
/// Candidate organizations are enumerated and electrically characterized
/// once; the best design under each entry of `targets` is selected from
/// that single pass. For an N-target study this does ~1/N of the work of N
/// [`characterize`] calls while producing identical results (the target
/// only steers selection, never the circuit model). `config.target` is
/// ignored; results come back in `targets` order.
///
/// # Errors
///
/// Same conditions as [`characterize`].
pub fn characterize_targets(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    dse::optimize_targets(cell, config, targets)
}

/// [`characterize_targets`] with subarray physics memoized in `cache`.
///
/// The geometry candidates a design-space pass characterizes depend only on
/// the cell, node, and programming depth — not on capacity, word width, or
/// target — so consecutive calls across a study's capacity axis re-derive
/// mostly the same subarrays. Threading one [`SubarrayCache`] through every
/// call computes each unique geometry once for the whole study. Results are
/// bit-identical to [`characterize_targets`]; only the work is shared.
///
/// # Errors
///
/// Same conditions as [`characterize`].
pub fn characterize_targets_cached(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
    cache: &SubarrayCache,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    dse::optimize_targets_cached(cell, config, targets, Some(cache))
}

/// [`characterize_targets_cached`] with cross-pass incumbent seeding.
///
/// Alongside the subarray-physics memoization, each target's
/// branch-and-bound scan starts from the final incumbents a prior
/// *identical* pass (same cell, node, programming depth, capacity, and word
/// width) recorded into `seeds`. Seeding only tightens the score bounds, so
/// winners stay byte-identical to a cold scan while a warm pass prunes
/// every candidate the final winner dominates. Completed passes record
/// their own incumbents back into the store, warming later studies that
/// share design points.
///
/// # Errors
///
/// Same conditions as [`characterize`].
pub fn characterize_targets_seeded(
    cell: &CellDefinition,
    config: &ArrayConfig,
    targets: &[OptimizationTarget],
    cache: &SubarrayCache,
    seeds: &IncumbentStore,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    dse::optimize_targets_seeded(cell, config, targets, Some(cache), Some(seeds))
}

/// Characterizes `cell` under every optimization target (paper Fig. 3 shows
/// arrays per technology under all targets). Runs the shared-DSE pass of
/// [`characterize_targets`] under the hood.
///
/// # Errors
///
/// Same conditions as [`characterize`].
pub fn characterize_all_targets(
    cell: &CellDefinition,
    config: &ArrayConfig,
) -> Result<Vec<ArrayCharacterization>, CharacterizationError> {
    characterize_targets(cell, config, &OptimizationTarget::ALL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvmx_celldb::{custom, tentpole, CellFlavor, TechnologyClass};

    #[test]
    fn all_targets_characterize_2mb_stt() {
        let cell = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap();
        let config = ArrayConfig::new(Capacity::from_mebibytes(2));
        let results = characterize_all_targets(&cell, &config).unwrap();
        assert_eq!(results.len(), OptimizationTarget::ALL.len());
    }

    #[test]
    fn stt_is_denser_than_sram_by_about_6x() {
        // Paper Fig. 5: "optimistic STT offers 6× higher density over SRAM".
        let stt = tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).unwrap();
        let sram = custom::sram_16nm();
        let config = ArrayConfig::new(Capacity::from_mebibytes(2));
        let stt_array = characterize(&stt, &config).unwrap();
        let sram_array = characterize(
            &sram,
            &config.with_node(nvmx_units::Meters::from_nano(16.0)),
        )
        .unwrap();
        let ratio = stt_array.density_mbit_per_mm2() / sram_array.density_mbit_per_mm2();
        assert!(
            (3.0..12.0).contains(&ratio),
            "density ratio {ratio} (stt {} vs sram {})",
            stt_array.density_mbit_per_mm2(),
            sram_array.density_mbit_per_mm2()
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = CharacterizationError::UnsupportedBitsPerCell {
            cell: "SRAM-16nm".into(),
            requested: BitsPerCell::Mlc2,
            supported: BitsPerCell::Slc,
        };
        let text = err.to_string();
        assert!(text.contains("SRAM-16nm"));
        assert!(text.contains("MLC-2b"));
    }

    #[test]
    fn config_builders_compose() {
        let config = ArrayConfig::new(Capacity::from_mebibytes(16))
            .with_word_bits(512)
            .with_target(OptimizationTarget::WriteEdp)
            .with_bits_per_cell(BitsPerCell::Mlc2);
        assert_eq!(config.word_bits, 512);
        assert_eq!(config.target, OptimizationTarget::WriteEdp);
        assert_eq!(config.bits_per_cell, BitsPerCell::Mlc2);
    }
}
