//! CMOS process-technology parameters (CACTI/NVSim-style).
//!
//! The simulator carries a small library of predictive technology nodes.
//! Peripheral circuitry (decoders, sense amplifiers, drivers) is built from
//! these parameters; memory-cell geometry scales with the node's feature
//! size. Requesting a node between two library entries log-interpolates.

use nvmx_units::{Meters, Volts};
use serde::{Deserialize, Serialize};

/// Electrical parameters of one logic process node.
///
/// All values are in SI units; per-width quantities are per meter of
/// transistor width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Feature size F.
    pub feature_size: Meters,
    /// Nominal supply voltage.
    pub vdd: Volts,
    /// NMOS threshold voltage (used by the Horowitz delay model).
    pub vth: Volts,
    /// Fanout-of-4 inverter delay, seconds.
    pub fo4_delay: f64,
    /// Gate capacitance per meter of transistor width, F/m.
    pub c_gate_per_m: f64,
    /// Drain/junction capacitance per meter of width, F/m.
    pub c_drain_per_m: f64,
    /// Effective NMOS on-resistance × width, Ω·m (divide by width for Ω).
    pub r_on_n_per_m: f64,
    /// Subthreshold + gate leakage current per meter of width, A/m.
    pub i_off_per_m: f64,
    /// Local-layer wire resistance, Ω/m.
    pub wire_r_per_m: f64,
    /// Local-layer wire capacitance, F/m.
    pub wire_c_per_m: f64,
    /// Global-layer (H-tree) wire resistance, Ω/m.
    pub global_wire_r_per_m: f64,
    /// Global-layer wire capacitance, F/m.
    pub global_wire_c_per_m: f64,
}

impl TechnologyParams {
    /// Minimum-size transistor width (2 F by convention).
    pub fn min_width(&self) -> f64 {
        2.0 * self.feature_size.value()
    }

    /// Gate capacitance of a transistor `width_f` features wide.
    pub fn gate_cap(&self, width_f: f64) -> f64 {
        self.c_gate_per_m * width_f * self.feature_size.value()
    }

    /// Drain capacitance of a transistor `width_f` features wide.
    pub fn drain_cap(&self, width_f: f64) -> f64 {
        self.c_drain_per_m * width_f * self.feature_size.value()
    }

    /// On-resistance of an NMOS `width_f` features wide.
    pub fn r_on(&self, width_f: f64) -> f64 {
        self.r_on_n_per_m / (width_f * self.feature_size.value())
    }

    /// Leakage current of a transistor `width_f` features wide, amps.
    pub fn leak_current(&self, width_f: f64) -> f64 {
        self.i_off_per_m * width_f * self.feature_size.value()
    }

    /// Leakage *power* of a transistor `width_f` features wide, watts.
    pub fn leak_power(&self, width_f: f64) -> f64 {
        self.leak_current(width_f) * self.vdd.value()
    }

    /// Input capacitance of a minimum-size inverter.
    pub fn c_inv_min(&self) -> f64 {
        // NMOS (2 F) + PMOS (4 F) gate caps.
        self.gate_cap(2.0) + self.gate_cap(4.0)
    }
}

/// Library anchor nodes, largest to smallest.
const LIBRARY: [TechnologyParams; 7] = [
    node(
        65.0, 1.10, 0.42, 26.0e-12, 1.10e-9, 0.60e-9, 1.10e-3, 6.0e-3, 1.6e6, 2.2e-10,
    ),
    node(
        45.0, 1.00, 0.40, 19.0e-12, 1.05e-9, 0.58e-9, 1.20e-3, 8.0e-3, 2.0e6, 2.1e-10,
    ),
    node(
        40.0, 1.00, 0.39, 17.0e-12, 1.02e-9, 0.56e-9, 1.25e-3, 9.0e-3, 2.2e6, 2.1e-10,
    ),
    node(
        32.0, 0.95, 0.38, 14.0e-12, 1.00e-9, 0.55e-9, 1.30e-3, 1.1e-2, 2.7e6, 2.0e-10,
    ),
    node(
        28.0, 0.90, 0.37, 12.5e-12, 0.98e-9, 0.54e-9, 1.35e-3, 1.3e-2, 3.0e6, 2.0e-10,
    ),
    node(
        22.0, 0.85, 0.36, 10.5e-12, 0.95e-9, 0.52e-9, 1.40e-3, 1.6e-2, 3.6e6, 1.9e-10,
    ),
    node(
        16.0, 0.80, 0.35, 8.5e-12, 0.92e-9, 0.50e-9, 1.45e-3, 2.0e-2, 4.5e6, 1.9e-10,
    ),
];

#[allow(clippy::too_many_arguments)] // one row of the anchor table
const fn node(
    f_nm: f64,
    vdd: f64,
    vth: f64,
    fo4: f64,
    c_gate_f_per_m: f64,  // ≈1 fF/µm ⇒ 1e-9 F/m
    c_drain_f_per_m: f64, // ≈0.5 fF/µm ⇒ 0.5e-9 F/m
    r_on_ohm_m: f64,      // ≈1.2 kΩ·µm ⇒ 1.2e-3 Ω·m
    i_off_a_per_m: f64,   // ≈10–20 nA/µm ⇒ 1–2e-2 A/m
    wire_r: f64,
    wire_c: f64,
) -> TechnologyParams {
    TechnologyParams {
        feature_size: Meters::new(f_nm * 1.0e-9),
        vdd: Volts::new(vdd),
        vth: Volts::new(vth),
        fo4_delay: fo4,
        c_gate_per_m: c_gate_f_per_m,
        c_drain_per_m: c_drain_f_per_m,
        r_on_n_per_m: r_on_ohm_m,
        i_off_per_m: i_off_a_per_m,
        wire_r_per_m: wire_r,
        wire_c_per_m: wire_c,
        global_wire_r_per_m: wire_r * 0.12,
        global_wire_c_per_m: wire_c * 1.4,
    }
}

/// Returns technology parameters for feature size `node`, interpolating
/// between library anchors when necessary.
///
/// Nodes outside the library range clamp to the nearest anchor (the paper's
/// studies run at 16–45 nm).
///
/// # Examples
///
/// ```
/// use nvmx_nvsim::technology::lookup;
/// use nvmx_units::Meters;
///
/// let t22 = lookup(Meters::from_nano(22.0));
/// let t16 = lookup(Meters::from_nano(16.0));
/// assert!(t16.fo4_delay < t22.fo4_delay);
/// ```
pub fn lookup(node: Meters) -> TechnologyParams {
    let f = node.value();
    let first = LIBRARY[0];
    let last = LIBRARY[LIBRARY.len() - 1];
    if f >= first.feature_size.value() {
        return TechnologyParams {
            feature_size: node,
            ..first
        };
    }
    if f <= last.feature_size.value() {
        return TechnologyParams {
            feature_size: node,
            ..last
        };
    }
    for pair in LIBRARY.windows(2) {
        let (hi, lo) = (pair[0], pair[1]);
        if f <= hi.feature_size.value() && f >= lo.feature_size.value() {
            let span = hi.feature_size.value() - lo.feature_size.value();
            let t = (f - lo.feature_size.value()) / span; // 1.0 at hi, 0.0 at lo
            let lerp = |a: f64, b: f64| b + (a - b) * t;
            return TechnologyParams {
                feature_size: node,
                vdd: Volts::new(lerp(hi.vdd.value(), lo.vdd.value())),
                vth: Volts::new(lerp(hi.vth.value(), lo.vth.value())),
                fo4_delay: lerp(hi.fo4_delay, lo.fo4_delay),
                c_gate_per_m: lerp(hi.c_gate_per_m, lo.c_gate_per_m),
                c_drain_per_m: lerp(hi.c_drain_per_m, lo.c_drain_per_m),
                r_on_n_per_m: lerp(hi.r_on_n_per_m, lo.r_on_n_per_m),
                i_off_per_m: lerp(hi.i_off_per_m, lo.i_off_per_m),
                wire_r_per_m: lerp(hi.wire_r_per_m, lo.wire_r_per_m),
                wire_c_per_m: lerp(hi.wire_c_per_m, lo.wire_c_per_m),
                global_wire_r_per_m: lerp(hi.global_wire_r_per_m, lo.global_wire_r_per_m),
                global_wire_c_per_m: lerp(hi.global_wire_c_per_m, lo.global_wire_c_per_m),
            };
        }
    }
    unreachable!("library windows cover the full range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_monotone_in_fo4() {
        for pair in LIBRARY.windows(2) {
            assert!(
                pair[0].fo4_delay > pair[1].fo4_delay,
                "FO4 must shrink with node"
            );
            assert!(
                pair[0].feature_size.value() > pair[1].feature_size.value(),
                "library must be ordered large→small"
            );
        }
    }

    #[test]
    fn lookup_exact_anchor() {
        let t = lookup(Meters::from_nano(22.0));
        assert!((t.fo4_delay - 10.5e-12).abs() < 1e-15);
        assert!((t.vdd.value() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn lookup_interpolates() {
        let t25 = lookup(Meters::from_nano(25.0));
        let t22 = lookup(Meters::from_nano(22.0));
        let t28 = lookup(Meters::from_nano(28.0));
        assert!(t25.fo4_delay > t22.fo4_delay && t25.fo4_delay < t28.fo4_delay);
        assert!((t25.feature_size.value() - 25.0e-9).abs() < 1e-15);
    }

    #[test]
    fn lookup_clamps_out_of_range() {
        let t7 = lookup(Meters::from_nano(7.0));
        let t16 = lookup(Meters::from_nano(16.0));
        assert_eq!(t7.fo4_delay, t16.fo4_delay);
        assert!((t7.feature_size.value() - 7.0e-9).abs() < 1e-15);

        let t90 = lookup(Meters::from_nano(90.0));
        let t65 = lookup(Meters::from_nano(65.0));
        assert_eq!(t90.vdd, t65.vdd);
    }

    #[test]
    fn derived_quantities_scale_with_width() {
        let t = lookup(Meters::from_nano(22.0));
        assert!((t.gate_cap(8.0) / t.gate_cap(2.0) - 4.0).abs() < 1e-9);
        assert!((t.r_on(2.0) / t.r_on(8.0) - 4.0).abs() < 1e-9);
        assert!(t.leak_power(4.0) > 0.0);
        // ~1 fF/µm gate cap sanity: a 10 µm transistor ≈ 10 fF.
        let w_f = 10.0e-6 / t.feature_size.value();
        let c = t.gate_cap(w_f);
        assert!((5.0e-15..20.0e-15).contains(&c), "{c}");
    }

    #[test]
    fn min_inverter_cap_is_femtofarad_scale() {
        let t = lookup(Meters::from_nano(22.0));
        let c = t.c_inv_min();
        assert!((0.05e-15..1.0e-15).contains(&c), "{c}");
    }
}
