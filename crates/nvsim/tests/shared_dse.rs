//! Regression proof for the shared-DSE pass: for every tentpole cell and
//! every optimization target, `characterize_targets` must produce results
//! identical to a standalone per-target `characterize` call — no numeric
//! drift, no selection drift.

use nvmx_celldb::{survey, tentpole};
use nvmx_nvsim::{
    characterize, characterize_all_targets, characterize_targets, ArrayConfig, OptimizationTarget,
};
use nvmx_units::{BitsPerCell, Capacity};

fn config() -> ArrayConfig {
    ArrayConfig::new(Capacity::from_mebibytes(2))
}

#[test]
fn shared_pass_matches_per_target_for_every_tentpole_cell_and_target() {
    let cells = tentpole::tentpoles(survey::database());
    assert!(!cells.is_empty(), "tentpole set must not be empty");
    for cell in &cells {
        let shared = characterize_targets(cell, &config(), &OptimizationTarget::ALL)
            .unwrap_or_else(|e| panic!("{}: {e}", cell.name));
        assert_eq!(shared.len(), OptimizationTarget::ALL.len());
        for (result, target) in shared.iter().zip(OptimizationTarget::ALL) {
            let standalone = characterize(cell, &config().with_target(target))
                .unwrap_or_else(|e| panic!("{} @ {target}: {e}", cell.name));
            assert_eq!(
                result, &standalone,
                "shared-DSE result diverged for {} @ {target}",
                cell.name
            );
        }
    }
}

#[test]
fn shared_pass_matches_per_target_at_mlc_depths() {
    let cells = tentpole::tentpoles(survey::database());
    for cell in cells.iter().filter(|c| c.supports(BitsPerCell::Mlc2)) {
        let config = config().with_bits_per_cell(BitsPerCell::Mlc2);
        let shared = characterize_targets(cell, &config, &OptimizationTarget::ALL).unwrap();
        for (result, target) in shared.iter().zip(OptimizationTarget::ALL) {
            let standalone = characterize(cell, &config.with_target(target)).unwrap();
            assert_eq!(
                result, &standalone,
                "MLC divergence for {} @ {target}",
                cell.name
            );
        }
    }
}

#[test]
fn all_targets_wrapper_is_the_shared_pass() {
    let cell = cells_one();
    let via_wrapper = characterize_all_targets(&cell, &config()).unwrap();
    let via_targets = characterize_targets(&cell, &config(), &OptimizationTarget::ALL).unwrap();
    assert_eq!(via_wrapper, via_targets);
}

#[test]
fn target_subsets_and_duplicates_select_consistently() {
    let cell = cells_one();
    let subset = [
        OptimizationTarget::Area,
        OptimizationTarget::ReadLatency,
        OptimizationTarget::Area,
    ];
    let results = characterize_targets(&cell, &config(), &subset).unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0], results[2], "duplicate targets must agree");
    assert_eq!(results[0].target, OptimizationTarget::Area);
    assert_eq!(results[1].target, OptimizationTarget::ReadLatency);
    assert_eq!(
        results[0],
        characterize(&cell, &config().with_target(OptimizationTarget::Area)).unwrap()
    );
}

#[test]
fn empty_target_list_yields_no_results() {
    let cell = cells_one();
    assert!(characterize_targets(&cell, &config(), &[])
        .unwrap()
        .is_empty());
}

fn cells_one() -> nvmx_celldb::CellDefinition {
    tentpole::tentpole_cell(
        nvmx_celldb::TechnologyClass::Stt,
        nvmx_celldb::CellFlavor::Optimistic,
    )
    .expect("STT is always surveyed")
}
