//! Hostility proof for the persistent characterization store: every store
//! pathology — truncation, bit flips, version skew, fingerprint
//! collisions, racing publishers — must degrade to recomputation, with
//! winners byte-identical to a storeless run. The store may only ever
//! make a run faster, never different.
//!
//! These tests drive real files through the public `SubarrayCache` L2
//! path (a fresh cache per "process", one shared store directory), unlike
//! the codec-level proptests in `store.rs` which attack `decode_slab`
//! directly.

use nvmx_celldb::{survey, tentpole, CellDefinition};
use nvmx_nvsim::{
    characterize_targets, characterize_targets_cached, ArrayConfig, OptimizationTarget,
    SubarrayCache,
};
use nvmx_units::{BitsPerCell, Capacity};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const TARGETS: [OptimizationTarget; 2] = [OptimizationTarget::ReadEdp, OptimizationTarget::Area];

fn cells() -> Vec<CellDefinition> {
    tentpole::tentpoles(survey::database())
}

fn config() -> ArrayConfig {
    ArrayConfig::new(Capacity::from_mebibytes(2)).with_bits_per_cell(BitsPerCell::Slc)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nvmx_store_hostility_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One simulated cold process: a fresh cache (empty L1) over `dir`,
/// characterize, publish, and return (winners, that process's stats).
fn cold_process(
    dir: &Path,
    cell: &CellDefinition,
) -> (
    Vec<nvmx_nvsim::ArrayCharacterization>,
    nvmx_nvsim::CacheStats,
) {
    let cache = SubarrayCache::with_store(dir).expect("store dir opens");
    let result = characterize_targets_cached(cell, &config(), &TARGETS, &cache)
        .expect("characterization succeeds");
    cache.flush_store().expect("store flush succeeds");
    (result, cache.stats())
}

fn slab_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir is readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "slab"))
        .collect();
    files.sort();
    files
}

#[test]
fn a_warm_store_serves_a_cold_process_bit_identically() {
    let cells = cells();
    let cell = &cells[0];
    let reference = characterize_targets(cell, &config(), &TARGETS).expect("storeless run");
    let dir = temp_dir("warm");

    let (first, first_stats) = cold_process(&dir, cell);
    assert_eq!(reference, first, "cold-store winners diverged");
    assert!(first_stats.l2_misses > 0, "cold store must miss");
    assert_eq!(first_stats.l2_hits, 0);
    assert!(!slab_files(&dir).is_empty(), "flush published no slabs");

    let (second, second_stats) = cold_process(&dir, cell);
    assert_eq!(reference, second, "warm-store winners diverged");
    assert!(
        second_stats.l2_hits > 0,
        "a cold process against the warm store loaded nothing: {second_stats:?}"
    );
    assert_eq!(second_stats.l2_misses, 0, "{second_stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_file_pathology_degrades_to_recompute() {
    let cells = cells();
    let cell = &cells[0];
    let reference = characterize_targets(cell, &config(), &TARGETS).expect("storeless run");

    type Mutation = fn(&Path);
    let truncate: Mutation = |path| {
        let bytes = std::fs::read(path).unwrap();
        std::fs::write(path, &bytes[..bytes.len() / 2]).unwrap();
    };
    let flip: Mutation = |path| {
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(path, bytes).unwrap();
    };
    let version_skew: Mutation = |path| {
        let mut bytes = std::fs::read(path).unwrap();
        // Bytes 8..12 are the little-endian STORE_VERSION after the magic.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(path, bytes).unwrap();
    };
    let empty: Mutation = |path| std::fs::write(path, []).unwrap();

    // Each pathology must land in its own reject class: the per-class
    // counters are what an operator triages with, so a truncation that
    // counted as `corrupt` (or vice versa) would misdirect the diagnosis.
    type Class = fn(&nvmx_nvsim::L2RejectClasses) -> u64;
    let truncated_class: Class = |c| c.truncated;
    let corrupt_class: Class = |c| c.corrupt;
    let version_class: Class = |c| c.version;

    for (tag, mutate, class) in [
        ("truncated", truncate, truncated_class),
        ("flipped", flip, corrupt_class),
        ("version", version_skew, version_class),
        ("empty", empty, truncated_class),
    ] {
        let dir = temp_dir(tag);
        let _ = cold_process(&dir, cell);
        let files = slab_files(&dir);
        assert!(!files.is_empty(), "{tag}: nothing published");
        for file in &files {
            mutate(file);
        }
        let (result, stats) = cold_process(&dir, cell);
        assert_eq!(
            reference, result,
            "{tag}: corrupted store changed the winners"
        );
        assert_eq!(stats.l2_hits, 0, "{tag}: a corrupt slab counted as a hit");
        assert!(
            stats.l2_rejects > 0,
            "{tag}: corruption was not detected: {stats:?}"
        );
        assert!(
            class(&stats.l2_reject_classes) > 0,
            "{tag}: reject landed in the wrong class: {:?}",
            stats.l2_reject_classes
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_fingerprint_collision_is_rejected_not_trusted() {
    let cells = cells();
    let (cell_a, cell_b) = (&cells[0], &cells[1]);
    assert_ne!(cell_a.fingerprint(), cell_b.fingerprint());
    let reference = characterize_targets(cell_a, &config(), &TARGETS).expect("storeless run");

    // Publish each cell into its own store, then plant cell B's slab bytes
    // at cell A's path — a simulated 64-bit fingerprint collision.
    let dir_a = temp_dir("collide_a");
    let dir_b = temp_dir("collide_b");
    let _ = cold_process(&dir_a, cell_a);
    let _ = cold_process(&dir_b, cell_b);
    let files_a = slab_files(&dir_a);
    let files_b = slab_files(&dir_b);
    assert_eq!(files_a.len(), 1);
    assert_eq!(files_b.len(), 1);
    std::fs::copy(&files_b[0], &files_a[0]).unwrap();

    let (result, stats) = cold_process(&dir_a, cell_a);
    assert_eq!(reference, result, "a collision leaked foreign physics");
    assert_eq!(stats.l2_hits, 0, "{stats:?}");
    assert!(
        stats.l2_rejects > 0,
        "collision was not detected: {stats:?}"
    );
    assert!(
        stats.l2_reject_classes.collision > 0,
        "collision reject landed in the wrong class: {:?}",
        stats.l2_reject_classes
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn racing_publishers_never_tear_the_store() {
    let cells = cells();
    let cell = &cells[0];
    let reference = characterize_targets(cell, &config(), &TARGETS).expect("storeless run");
    let dir = temp_dir("race");
    std::fs::create_dir_all(&dir).unwrap();

    // Eight simulated processes characterize and publish concurrently into
    // one store directory; the write-once atomic publish must keep every
    // file whole no matter who wins.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let dir = dir.clone();
                scope.spawn(move || cold_process(&dir, cell).0)
            })
            .collect();
        for handle in handles {
            assert_eq!(reference, handle.join().expect("publisher thread"));
        }
    });

    let (result, stats) = cold_process(&dir, cell);
    assert_eq!(reference, result, "post-race load diverged");
    assert!(stats.l2_hits > 0, "{stats:?}");
    assert_eq!(
        stats.l2_rejects, 0,
        "racing publishers tore a slab: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single byte flip or truncation of any published slab file still
    /// yields storeless-identical winners through the real L2 path.
    #[test]
    fn arbitrary_slab_damage_degrades_to_recompute(
        damage_byte in any::<u8>(),
        position in 0.0f64..1.0,
        truncate in any::<bool>(),
        case in 0u32..u32::MAX,
    ) {
        let cells = cells();
        let cell = &cells[0];
        let reference = characterize_targets(cell, &config(), &TARGETS).unwrap();
        let dir = temp_dir(&format!("prop_{case}"));
        let _ = cold_process(&dir, cell);

        for file in slab_files(&dir) {
            let mut bytes = std::fs::read(&file).unwrap();
            let index = ((bytes.len() - 1) as f64 * position) as usize;
            if truncate {
                bytes.truncate(index);
            } else {
                // Force a real change even when damage_byte matches.
                bytes[index] ^= damage_byte | 1;
            }
            std::fs::write(&file, bytes).unwrap();
        }

        let (result, stats) = cold_process(&dir, cell);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(reference, result, "damaged store changed the winners");
        prop_assert_eq!(stats.l2_hits, 0, "damaged slab counted as a hit: {:?}", stats);
    }
}
