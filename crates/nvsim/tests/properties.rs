//! Property-based tests for the array simulator: physical monotonicities
//! and invariants over random geometries and configurations.

use nvmx_celldb::{tentpole, CellFlavor, TechnologyClass};
use nvmx_nvsim::subarray::Subarray;
use nvmx_nvsim::technology::lookup;
use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
use nvmx_units::{BitsPerCell, Capacity, Meters};
use proptest::prelude::*;

fn stt() -> nvmx_celldb::CellDefinition {
    tentpole::tentpole_cell(TechnologyClass::Stt, CellFlavor::Optimistic).expect("surveyed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn subarray_metrics_are_positive_and_finite(
        rows_exp in 5u32..12,
        cols_exp in 5u32..12,
        mux_exp in 0u32..4,
    ) {
        let rows = 1usize << rows_exp;
        let cols = 1usize << cols_exp;
        let mux = (1usize << mux_exp).min(cols);
        let tech = lookup(Meters::from_nano(22.0));
        let sub = Subarray::characterize(&tech, &stt(), rows, cols, mux, BitsPerCell::Slc);
        for v in [
            sub.read_latency, sub.write_latency, sub.read_energy,
            sub.write_energy, sub.leakage, sub.total_area(),
        ] {
            prop_assert!(v.is_finite() && v > 0.0, "non-physical metric {v}");
        }
        prop_assert!(sub.read_cycle >= sub.read_latency);
        prop_assert!(sub.write_cycle >= sub.write_latency);
        prop_assert!((0.0..=1.0).contains(&sub.area_efficiency()));
        prop_assert_eq!(sub.capacity_bits(), (rows * cols) as u64);
    }

    #[test]
    fn more_rows_never_speed_up_reads(cols_exp in 6u32..12, mux_exp in 0u32..3) {
        let cols = 1usize << cols_exp;
        let mux = (1usize << mux_exp).min(cols);
        let tech = lookup(Meters::from_nano(22.0));
        let small = Subarray::characterize(&tech, &stt(), 128, cols, mux, BitsPerCell::Slc);
        let large = Subarray::characterize(&tech, &stt(), 2048, cols, mux, BitsPerCell::Slc);
        prop_assert!(large.read_latency >= small.read_latency);
        prop_assert!(large.leakage >= small.leakage);
    }

    #[test]
    fn bigger_capacity_needs_more_area_and_leaks_more(cap_exp in 1u64..6) {
        let small_cfg = ArrayConfig::new(Capacity::from_mebibytes(1 << (cap_exp - 1)));
        let large_cfg = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp));
        let cell = stt();
        let small = characterize(&cell, &small_cfg).expect("characterizes");
        let large = characterize(&cell, &large_cfg).expect("characterizes");
        prop_assert!(large.area.value() > small.area.value());
        prop_assert!(large.leakage.value() > small.leakage.value());
        prop_assert_eq!(large.capacity.bits(), 2 * small.capacity.bits());
    }

    #[test]
    fn optimizer_never_loses_to_itself(target_idx in 0usize..8) {
        // The design chosen for target T must score at least as well on T
        // as designs chosen for any other target.
        let target = OptimizationTarget::ALL[target_idx];
        let cell = stt();
        let config = ArrayConfig::new(Capacity::from_mebibytes(2));
        let chosen = characterize(&cell, &config.with_target(target)).expect("ok");
        for other in OptimizationTarget::ALL {
            let alt = characterize(&cell, &config.with_target(other)).expect("ok");
            prop_assert!(
                chosen.score(target) <= alt.score(target) * (1.0 + 1e-9),
                "{target}: chosen {} vs {other}-optimized {}",
                chosen.score(target),
                alt.score(target)
            );
        }
    }

    #[test]
    fn node_scaling_shrinks_arrays(node_a in 16.0..30.0f64, node_b in 30.0..65.0f64) {
        let cell = stt();
        let config = ArrayConfig::new(Capacity::from_mebibytes(2));
        let fine = characterize(&cell, &config.with_node(Meters::from_nano(node_a))).expect("ok");
        let coarse = characterize(&cell, &config.with_node(Meters::from_nano(node_b))).expect("ok");
        prop_assert!(fine.area.value() < coarse.area.value());
        prop_assert!(fine.density_mbit_per_mm2() > coarse.density_mbit_per_mm2());
    }

    #[test]
    fn mlc_always_denser_than_slc(cap_exp in 1u64..5) {
        let cell = tentpole::tentpole_cell(TechnologyClass::Rram, CellFlavor::Optimistic)
            .expect("surveyed");
        let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp));
        let slc = characterize(&cell, &config).expect("ok");
        let mlc = characterize(&cell, &config.with_bits_per_cell(BitsPerCell::Mlc2)).expect("ok");
        prop_assert!(mlc.density_mbit_per_mm2() > slc.density_mbit_per_mm2());
        prop_assert!(mlc.read_latency.value() > slc.read_latency.value());
    }
}
