//! Property proof for branch-and-bound DSE pruning: the pruned streaming
//! scan must return bit-identical winners to the exhaustive (PR 2–4) scan
//! for random tentpole cells, capacities, programming depths, and target
//! subsets — with and without a subarray cache — and the score lower
//! bounds driving the pruning must never exceed the true scores.

use nvmx_celldb::{survey, tentpole};
use nvmx_nvsim::bounds::BoundContext;
use nvmx_nvsim::dse::{enumerate_organizations, optimize_targets_unpruned};
use nvmx_nvsim::{
    characterize_targets, characterize_targets_cached, characterize_targets_seeded, ArrayConfig,
    IncumbentStore, OptimizationTarget, SubarrayCache,
};
use nvmx_units::{BitsPerCell, Capacity};
use proptest::prelude::*;

fn target_subset(mask: u32) -> Vec<OptimizationTarget> {
    OptimizationTarget::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, target)| target)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole guarantee: pruning never changes a winner, bit for bit,
    /// whether the surviving candidates come from a cache or from scratch.
    #[test]
    fn pruned_winners_are_bit_identical_to_unpruned(
        cell_pick in 0usize..64,
        cap_exp in 0u32..4,
        depth_pick in 0usize..2,
        target_mask in 1u32..256,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let depth = [BitsPerCell::Slc, BitsPerCell::Mlc2][depth_pick];
        let targets = target_subset(target_mask);
        let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp))
            .with_bits_per_cell(depth);

        let cache = SubarrayCache::new();
        let unpruned = optimize_targets_unpruned(cell, &config, &targets, None);
        let pruned = characterize_targets(cell, &config, &targets);
        let pruned_cached = characterize_targets_cached(cell, &config, &targets, &cache);

        match (unpruned, pruned, pruned_cached) {
            (Ok(reference), Ok(pruned), Ok(cached)) => {
                prop_assert_eq!(&reference, &pruned, "pruned scan diverged for {}", &cell.name);
                prop_assert_eq!(
                    &reference, &cached,
                    "pruned+cached scan diverged for {}", &cell.name
                );
            }
            (Err(reference), Err(pruned), Err(cached)) => {
                prop_assert_eq!(&reference, &pruned);
                prop_assert_eq!(&reference, &cached);
            }
            _ => prop_assert!(
                false,
                "pruning flipped success/failure for {} at {}",
                &cell.name,
                config.capacity
            ),
        }
    }

    /// Cross-pass incumbent seeding must not move a bit either: a
    /// recording pass (cold store) and a fully warm pass (seeded from the
    /// recording pass's winners) both return exactly what the unseeded
    /// scan returns, for random cells, capacities, depths, and target
    /// subsets.
    #[test]
    fn seeded_winners_are_bit_identical_to_cold(
        cell_pick in 0usize..64,
        cap_exp in 0u32..4,
        depth_pick in 0usize..2,
        target_mask in 1u32..256,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let depth = [BitsPerCell::Slc, BitsPerCell::Mlc2][depth_pick];
        let targets = target_subset(target_mask);
        let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp))
            .with_bits_per_cell(depth);

        let cold_cache = SubarrayCache::new();
        let cold = characterize_targets_cached(cell, &config, &targets, &cold_cache);

        let warm_cache = SubarrayCache::new();
        let seeds = IncumbentStore::new();
        let recording = characterize_targets_seeded(cell, &config, &targets, &warm_cache, &seeds);
        let warm = characterize_targets_seeded(cell, &config, &targets, &warm_cache, &seeds);

        match (cold, recording, warm) {
            (Ok(reference), Ok(recording), Ok(warm)) => {
                prop_assert_eq!(
                    &reference, &recording,
                    "recording pass diverged for {}", &cell.name
                );
                prop_assert_eq!(&reference, &warm, "warm pass diverged for {}", &cell.name);
                prop_assert_eq!(seeds.len(), targets.len(), "one seed per target");
            }
            (Err(reference), Err(recording), Err(warm)) => {
                prop_assert_eq!(&reference, &recording);
                prop_assert_eq!(&reference, &warm);
                prop_assert!(seeds.is_empty(), "failed passes must record nothing");
            }
            _ => prop_assert!(
                false,
                "seeding flipped success/failure for {} at {}",
                &cell.name,
                config.capacity
            ),
        }
    }

    /// Soundness of the bounds themselves, against full characterization:
    /// pruning needs `bound ≤ score` for every target (with Area promised
    /// bit-exact), for every enumerated candidate of a random design
    /// point. A failure here means `bounds.rs` drifted from
    /// `subarray.rs`/`bank.rs`/`wire.rs`.
    #[test]
    fn score_bounds_never_exceed_true_scores(
        cell_pick in 0usize..64,
        cap_exp in 0u32..4,
        depth_pick in 0usize..2,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let depth = [BitsPerCell::Slc, BitsPerCell::Mlc2][depth_pick];
        if cell.supports(depth) {
            let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp))
                .with_bits_per_cell(depth);
            let tech = nvmx_nvsim::technology::lookup(config.node);
            let bounds = BoundContext::new(&tech, cell, depth, config.word_bits);
            for org in enumerate_organizations(&config) {
                // `characterize_organization` packages through the exact
                // bank metrics the scan compares against, so `score` here
                // is the scan's true score bit-for-bit.
                let packaged = nvmx_nvsim::dse::characterize_organization(cell, &config, org);
                for target in OptimizationTarget::ALL {
                    let bound = bounds
                        .score_bound_for(&org, target)
                        .expect("enumerated orgs are on-grid");
                    let truth = packaged.score(target);
                    prop_assert!(
                        bound <= truth,
                        "{}: bound {:e} exceeds true score {:e} for {} at {}",
                        &cell.name, bound, truth, target, org
                    );
                    if target == OptimizationTarget::Area {
                        prop_assert!(
                            bound.to_bits() == truth.to_bits(),
                            "{}: Area bound must be exact at {}",
                            &cell.name, org
                        );
                    }
                }
            }
        }
    }
}

/// Pruning must actually fire on the bread-and-butter design point, not
/// just be sound: a full 8-target pass over a 2 MiB STT array should skip
/// a solid majority of its candidates.
#[test]
fn pruning_skips_most_candidates_on_the_default_design_point() {
    let cell = tentpole::tentpole_cell(
        nvmx_celldb::TechnologyClass::Stt,
        nvmx_celldb::CellFlavor::Optimistic,
    )
    .unwrap();
    let config = ArrayConfig::new(Capacity::from_mebibytes(2));
    let cache = SubarrayCache::new();
    characterize_targets_cached(&cell, &config, &OptimizationTarget::ALL, &cache).unwrap();
    let stats = cache.stats();
    let candidates = enumerate_organizations(&config).len() as u64;
    assert_eq!(
        stats.candidates(),
        candidates,
        "hits + misses + pruned must account for every candidate"
    );
    assert!(
        stats.prune_rate() > 0.5,
        "expected >50% pruning on the default design point, got {:.1}% ({} of {})",
        stats.prune_rate() * 100.0,
        stats.pruned,
        candidates
    );
}

/// The warm-pass payoff: re-running the default design point seeded from
/// its own recorded winners returns identical results while pruning
/// strictly more candidates than the cold pass — the bound check now
/// compares against the final winner from candidate one.
#[test]
fn warm_pass_prunes_strictly_more_with_identical_results() {
    let cell = tentpole::tentpole_cell(
        nvmx_celldb::TechnologyClass::Stt,
        nvmx_celldb::CellFlavor::Optimistic,
    )
    .unwrap();
    let config = ArrayConfig::new(Capacity::from_mebibytes(2));
    let cache = SubarrayCache::new();
    let seeds = IncumbentStore::new();

    let cold =
        characterize_targets_seeded(&cell, &config, &OptimizationTarget::ALL, &cache, &seeds)
            .unwrap();
    let cold_stats = cache.stats();
    assert_eq!(seeds.len(), OptimizationTarget::ALL.len());
    assert_eq!(seeds.stats().recorded, OptimizationTarget::ALL.len() as u64);

    let warm =
        characterize_targets_seeded(&cell, &config, &OptimizationTarget::ALL, &cache, &seeds)
            .unwrap();
    let warm_stats = cache.stats().since(cold_stats);
    assert_eq!(cold, warm, "seeding must not change a single winner");
    assert_eq!(
        seeds.stats().seeded_scans,
        OptimizationTarget::ALL.len() as u64,
        "the warm pass seeds every target's scan"
    );

    let candidates = enumerate_organizations(&config).len() as u64;
    assert_eq!(
        warm_stats.candidates(),
        candidates,
        "hits + misses + pruned still account for every candidate"
    );
    assert!(
        warm_stats.prune_rate() > cold_stats.prune_rate(),
        "warm prune rate {:.3} must exceed cold {:.3}",
        warm_stats.prune_rate(),
        cold_stats.prune_rate()
    );
}

/// Seeds key on the full design point: a different capacity shares no
/// incumbents, runs exactly as cold, and records its own entries.
#[test]
fn different_capacity_never_seeds() {
    let cell = tentpole::tentpole_cell(
        nvmx_celldb::TechnologyClass::Rram,
        nvmx_celldb::CellFlavor::Pessimistic,
    )
    .unwrap();
    let seeds = IncumbentStore::new();
    let cache = SubarrayCache::new();
    let two = ArrayConfig::new(Capacity::from_mebibytes(2));
    let four = ArrayConfig::new(Capacity::from_mebibytes(4));

    characterize_targets_seeded(&cell, &two, &OptimizationTarget::ALL, &cache, &seeds).unwrap();
    let recorded_after_first = seeds.stats().recorded;

    let seeded =
        characterize_targets_seeded(&cell, &four, &OptimizationTarget::ALL, &cache, &seeds)
            .unwrap();
    assert_eq!(
        seeds.stats().seeded_scans,
        0,
        "a 4 MiB pass must not look warm from 2 MiB seeds"
    );
    assert_eq!(
        seeds.stats().recorded,
        recorded_after_first + OptimizationTarget::ALL.len() as u64,
        "the new design point records its own seeds"
    );
    let cold = characterize_targets_cached(&cell, &four, &OptimizationTarget::ALL, &cache).unwrap();
    assert_eq!(seeded, cold);
}
