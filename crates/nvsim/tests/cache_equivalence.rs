//! Property proof for the subarray characterization cache: cached and
//! uncached shared-DSE passes must return bit-identical winners for random
//! tentpole cells, capacities, programming depths, and target subsets —
//! cold cache, warm cache, and cache shared across capacities alike.

use nvmx_celldb::{survey, tentpole};
use nvmx_nvsim::{
    characterize_targets, characterize_targets_cached, ArrayConfig, OptimizationTarget,
    SubarrayCache,
};
use nvmx_units::{BitsPerCell, Capacity};
use proptest::prelude::*;

fn target_subset(mask: u32) -> Vec<OptimizationTarget> {
    OptimizationTarget::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, target)| target)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_winners_are_bit_identical_to_uncached(
        cell_pick in 0usize..64,
        cap_exp in 0u32..4,
        depth_pick in 0usize..2,
        target_mask in 1u32..256,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let depth = [BitsPerCell::Slc, BitsPerCell::Mlc2][depth_pick];
        let targets = target_subset(target_mask);
        let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp))
            .with_bits_per_cell(depth);

        let cache = SubarrayCache::new();
        let uncached = characterize_targets(cell, &config, &targets);
        let cold = characterize_targets_cached(cell, &config, &targets, &cache);
        let warm = characterize_targets_cached(cell, &config, &targets, &cache);

        match (uncached, cold, warm) {
            (Ok(reference), Ok(cold), Ok(warm)) => {
                prop_assert_eq!(&reference, &cold, "cold cache diverged for {}", &cell.name);
                prop_assert_eq!(&reference, &warm, "warm cache diverged for {}", &cell.name);
            }
            (Err(reference), Err(cold), Err(warm)) => {
                prop_assert_eq!(&reference, &cold);
                prop_assert_eq!(&reference, &warm);
            }
            _ => prop_assert!(
                false,
                "cache flipped success/failure for {} at {}",
                &cell.name,
                config.capacity
            ),
        }
    }

    #[test]
    fn one_cache_shared_across_the_capacity_axis_stays_identical(
        cell_pick in 0usize..64,
        target_mask in 1u32..256,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let targets = target_subset(target_mask);
        let cache = SubarrayCache::new();
        for mib in [1u64, 2, 4, 8] {
            let config = ArrayConfig::new(Capacity::from_mebibytes(mib));
            let reference = characterize_targets(cell, &config, &targets).unwrap();
            let cached = characterize_targets_cached(cell, &config, &targets, &cache).unwrap();
            prop_assert_eq!(reference, cached, "divergence at {} MiB for {}", mib, &cell.name);
        }
    }

    /// The counter invariant the pruned scan must uphold: every enumerated
    /// candidate either hit the cache, missed it, or was pruned —
    /// `hits + misses + pruned == candidates` — for any cell, capacity,
    /// depth, and target subset, cold and warm alike.
    #[test]
    fn hit_miss_prune_counters_account_for_every_candidate(
        cell_pick in 0usize..64,
        cap_exp in 0u32..4,
        depth_pick in 0usize..2,
        target_mask in 1u32..256,
    ) {
        let cells = tentpole::tentpoles(survey::database());
        let cell = &cells[cell_pick % cells.len()];
        let depth = [BitsPerCell::Slc, BitsPerCell::Mlc2][depth_pick];
        if cell.supports(depth) {
            let targets = target_subset(target_mask);
            let config = ArrayConfig::new(Capacity::from_mebibytes(1 << cap_exp))
                .with_bits_per_cell(depth);
            let candidates =
                nvmx_nvsim::dse::enumerate_organizations(&config).len() as u64;
            let cache = SubarrayCache::new();

            characterize_targets_cached(cell, &config, &targets, &cache).unwrap();
            let cold = cache.stats();
            prop_assert_eq!(
                cold.candidates(), candidates,
                "cold pass dropped candidates for {}: {:?}", &cell.name, cold
            );

            characterize_targets_cached(cell, &config, &targets, &cache).unwrap();
            let warm = cache.stats().since(cold);
            prop_assert_eq!(
                warm.candidates(), candidates,
                "warm pass dropped candidates for {}: {:?}", &cell.name, warm
            );
            // Pruning decisions are deterministic, so the warm pass prunes
            // the same set and serves every surviving lookup from the
            // cache.
            prop_assert_eq!(warm.pruned, cold.pruned, "prune set must be deterministic");
            prop_assert_eq!(warm.misses, 0u64, "warm pass must not re-characterize");
        }
    }
}

/// The ISSUE-level reuse claim: a tentpole-wide, 4-capacity, 2-depth study
/// shares the large majority of its subarray characterizations through the
/// cache (the geometry space barely depends on capacity).
///
/// Branch-and-bound pruning (PR 5) re-based this gate from 0.70 to 0.60:
/// pruning skips the cache entirely for provably-losing candidates, and
/// the skipped lookups were disproportionately *hits* (a geometry that
/// survives at one capacity is often pruned at the next, so the cheap
/// repeat lookups vanish from the denominator). Measured after pruning:
/// 67.3 % hit rate over ~4.1k lookups with 69 % of the 13.3k candidates
/// pruned — i.e. far less total work, at a slightly lower *rate* on what
/// remains.
#[test]
fn four_capacity_study_reuses_most_subarray_characterizations() {
    let cells = tentpole::tentpoles(survey::database());
    let cache = SubarrayCache::new();
    for cell in &cells {
        for depth in [BitsPerCell::Slc, BitsPerCell::Mlc2] {
            if !cell.supports(depth) {
                continue;
            }
            for mib in [1u64, 2, 4, 8] {
                let config =
                    ArrayConfig::new(Capacity::from_mebibytes(mib)).with_bits_per_cell(depth);
                characterize_targets_cached(cell, &config, &OptimizationTarget::ALL, &cache)
                    .unwrap();
            }
        }
    }
    let stats = cache.stats();
    assert!(
        stats.hit_rate() >= 0.60,
        "expected ≥ 60% reuse across 4 capacities, got {:.1}% ({} hits / {} lookups)",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.lookups()
    );
    assert!(
        stats.prune_rate() >= 0.60,
        "expected ≥ 60% pruning across 4 capacities, got {:.1}% ({} of {})",
        stats.prune_rate() * 100.0,
        stats.pruned,
        stats.candidates()
    );
}
