//! JSON text layer for the workspace's `serde` stand-in: a recursive-descent
//! parser and a pretty printer over [`serde::Value`].

pub use serde::Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Deserializes any [`Deserialize`] type from an already-parsed [`Value`]
/// tree (API parity with real `serde_json::from_value`, modulo taking the
/// tree by reference).
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match `T`'s shape.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for this implementation; kept for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Infallible for this implementation; kept for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            '[',
            ']',
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                depth,
                '{',
                '}',
                |out, (k, v), indent, depth| {
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, v, indent, depth);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

/// Floats print via Rust's shortest-roundtrip `Display`. Infinities print
/// as the syntactically-valid JSON numbers `1e999`/`-1e999`, which Rust's
/// `f64` parser saturates back to the same infinity — the JSONL wire
/// format (`core::wire`) depends on every float round-tripping through
/// text bit-exactly (e.g. SRAM's unbounded `endurance_cycles`). NaN, which
/// carries no information worth wiring, stays `null` like real
/// `serde_json`.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = f.to_string();
        out.push_str(&text);
        if !text.contains('.') && !text.contains('e') && !text.contains("inf") {
            out.push_str(".0");
        }
    } else if f == f64::INFINITY {
        out.push_str("1e999");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, got `{}` at byte {}",
                                char::from(other),
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, got `{}` at byte {}",
                                char::from(other),
                                self.pos
                            )))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                char::from(other),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                b if b < 0x80 => out.push(char::from(b)),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte position.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_print_with_decimal_point() {
        assert_eq!(to_string(&60.0f64).unwrap(), "60.0");
        let back: f64 = from_str("60.0").unwrap();
        assert_eq!(back, 60.0);
    }

    #[test]
    fn infinities_roundtrip_through_text() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "1e999");
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "-1e999");
        let inf: f64 = from_str("1e999").unwrap();
        assert_eq!(inf, f64::INFINITY);
        let ninf: f64 = from_str("-1e999").unwrap();
        assert_eq!(ninf, f64::NEG_INFINITY);
        // NaN is not representable and still prints as null.
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn finite_floats_roundtrip_bit_exactly() {
        for f in [0.1, -0.0, 1.0e-300, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {text}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
