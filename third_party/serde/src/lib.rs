//! Offline stand-in for `serde`, built for this workspace.
//!
//! The real crates.io `serde` is unreachable in the build environment, so
//! this crate provides the subset the workspace actually uses: derivable
//! [`Serialize`]/[`Deserialize`] traits over an owned JSON-like [`Value`]
//! tree. `serde_json` (the sibling stub) parses/prints that tree.
//!
//! Supported derive shapes (see `serde_derive`):
//! - structs with named fields, honoring `#[serde(default)]` at container
//!   and field level,
//! - transparent newtype structs (`#[serde(transparent)]`, and tuple
//!   newtypes which serialize transparently by default, as in real serde),
//! - unit-only enums (serialized as the variant-name string),
//! - externally tagged enums with struct variants,
//! - internally tagged enums: `#[serde(tag = "...", rename_all = "snake_case")]`.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree. Object keys preserve insertion order so
/// serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    Uint(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, if this is any number.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Uint(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Numeric value as `u64` when exactly representable.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64` when exactly representable.
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Uint(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            Value::Int(i) => Some(*i),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Short tag used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Uint(_) | Value::Int(_) | Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts `self` into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(u).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Uint(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let u = v
            .as_u64()
            .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
        usize::try_from(u).map_err(|_| Error::new("integer out of range"))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i64::from(*self);
                if i >= 0 { Value::Uint(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(i).map_err(|_| Error::new("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let i = *self as i64;
        if i >= 0 {
            Value::Uint(i as u64)
        } else {
            Value::Int(i)
        }
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let i = v
            .as_i64()
            .ok_or_else(|| Error::new(format!("expected integer, got {}", v.kind())))?;
        isize::try_from(i).map_err(|_| Error::new("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::new(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::new(format!("expected bool, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::new(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// `Value` round-trips through itself, so callers can parse once and probe
// sections individually (real serde_json offers the same via
// `serde_json::Value`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// Shared pointers serialize as their contents and deserialize into a fresh
// allocation, like real serde's `rc` feature: no cross-reference tracking.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Self::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Self::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::new("expected 2-element array")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::new("expected 3-element array")),
        }
    }
}
