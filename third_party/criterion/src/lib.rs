//! Offline stand-in for `criterion`.
//!
//! Implements the measurement surface this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Behavior matches criterion's harness contract: `cargo bench` passes
//! `--bench` to the target, which triggers measurement; any other
//! invocation (notably `cargo test`, which runs bench targets without
//! `--bench`) is treated as *test mode* and skips the workload so test
//! runs stay fast.
//!
//! Measurement is deliberately simple — per-sample wall-clock timing with
//! mean/min/max over `sample_size` samples, printed in a criterion-like
//! format. There are no statistical comparisons against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to the `criterion_group!`-generated functions.
pub struct Criterion {
    measure: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Self {
            measure,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self.measure, self.default_sample_size, name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.measure, samples, &label, |b| f(b));
        self
    }

    /// Benchmarks a function parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_one(self.criterion.measure, samples, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: function name plus parameter.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration time recorded by [`Bencher::iter`].
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, running it once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup iteration (also primes caches/allocations).
        black_box(f());
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.result = Some((total / self.samples as u32, min, max));
    }
}

fn run_one(measure: bool, samples: usize, label: &str, mut f: impl FnMut(&mut Bencher)) {
    if !measure {
        println!("bench {label}: skipped (test mode; run via `cargo bench`)");
        return;
    }
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max)) => println!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max)
        ),
        None => println!("{label:<50} (no measurement recorded)"),
    }
}

/// Formats like criterion: value scaled to ns/µs/ms/s.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1.0e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1.0e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1.0e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-target `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
