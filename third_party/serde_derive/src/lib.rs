//! Derive macros for the workspace's `serde` stand-in.
//!
//! Parses the annotated item directly from the `proc_macro` token stream
//! (no `syn`/`quote` available offline) and emits `Serialize`/`Deserialize`
//! impls over the value-tree model. Supports the container shapes the
//! workspace uses; anything else panics at expansion time with a clear
//! message so new shapes fail loudly instead of misbehaving.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Default)]
struct ContainerAttrs {
    default: bool,
    transparent: bool,
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    default: bool,
    is_option: bool,
}

enum VariantKind {
    Unit,
    /// Single unnamed field (`Custom(String)`), serialized as
    /// `{"Variant": <inner>}`.
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Named(Vec<Field>),
    /// Tuple struct with the given arity (only arity 1 is supported).
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_container(input: TokenStream) -> Container {
    let mut it = input.into_iter().peekable();
    let mut attrs = ContainerAttrs::default();
    consume_attrs(&mut it, |text| merge_serde_attr(text, &mut attrs));
    skip_visibility(&mut it);

    let kw = expect_ident(&mut it);
    let name = expect_ident(&mut it);
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    let shape = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(&g))
            }
            other => panic!("serde stand-in derive: unsupported struct body: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g))
            }
            other => panic!("serde stand-in derive: unsupported enum body: {other:?}"),
        },
        other => panic!("serde stand-in derive: unsupported item kind `{other}`"),
    };

    if let Shape::Tuple(arity) = shape {
        assert!(
            arity == 1,
            "serde stand-in derive: tuple struct `{name}` has {arity} fields; only newtypes are supported"
        );
    }
    Container { name, attrs, shape }
}

/// Consumes leading `#[...]` attributes, reporting each one's stripped text.
fn consume_attrs(it: &mut Tokens, mut on_attr: impl FnMut(&str)) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let text: String = g
                    .stream()
                    .to_string()
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect();
                on_attr(&text);
            }
            other => panic!("serde stand-in derive: malformed attribute: {other:?}"),
        }
    }
}

fn merge_serde_attr(text: &str, attrs: &mut ContainerAttrs) {
    let Some(body) = text
        .strip_prefix("serde(")
        .and_then(|t| t.strip_suffix(')'))
    else {
        return;
    };
    for part in body.split(',') {
        match part {
            "default" => attrs.default = true,
            "transparent" => attrs.transparent = true,
            _ if part.starts_with("tag=") => {
                attrs.tag = Some(part["tag=".len()..].trim_matches('"').to_owned());
            }
            _ if part.starts_with("rename_all=") => {
                let style = part["rename_all=".len()..].trim_matches('"');
                assert!(
                    style == "snake_case",
                    "serde stand-in derive: unsupported rename_all style `{style}`"
                );
                attrs.rename_all_snake = true;
            }
            other => panic!("serde stand-in derive: unsupported serde attribute `{other}`"),
        }
    }
}

fn skip_visibility(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

fn expect_ident(it: &mut Tokens) -> String {
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stand-in derive: expected identifier, got {other:?}"),
    }
}

fn parse_fields(group: &Group) -> Vec<Field> {
    let mut it = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut field_default = false;
        consume_attrs(&mut it, |text| {
            if text == "serde(default)" {
                field_default = true;
            }
        });
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        let name = expect_ident(&mut it);
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stand-in derive: expected `:` after field, got {other:?}"),
        }
        // Collect the type's tokens up to a top-level comma.
        let mut ty = String::new();
        let mut angle_depth = 0i32;
        for tok in it.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    ',' if angle_depth == 0 => break,
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
            }
            ty.push_str(&tok.to_string());
        }
        fields.push(Field {
            name,
            default: field_default,
            is_option: ty.starts_with("Option"),
        });
    }
    fields
}

fn count_tuple_fields(group: &Group) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tok in group.stream() {
        saw_token = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                ',' if depth == 0 => fields += 1,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one, but the workspace newtypes
    // never use one; count the final unterminated field instead.
    if saw_token {
        fields + 1
    } else {
        0
    }
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let mut it = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        consume_attrs(&mut it, |_| {});
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it);
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let parsed = parse_fields(g);
                it.next();
                VariantKind::Struct(parsed)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g);
                assert!(
                    arity == 1,
                    "serde stand-in derive: tuple variant `{name}` has {arity} fields; only newtype variants are supported"
                );
                it.next();
                VariantKind::Newtype
            }
            _ => VariantKind::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn snake_case(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn wire_name(variant: &str, attrs: &ContainerAttrs) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_owned()
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Tuple(_) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Named(fields) if c.attrs.transparent => {
            assert!(
                fields.len() == 1,
                "serde stand-in derive: transparent struct `{name}` must have exactly one field"
            );
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Shape::Named(fields) => {
            let mut code = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                code.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            code.push_str("::serde::Value::Object(__fields)");
            code
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = wire_name(&v.name, &c.attrs);
                match (&v.kind, &c.attrs.tag) {
                    (VariantKind::Unit, None) => arms.push_str(&format!(
                        "Self::{} => ::serde::Value::Str(::std::string::String::from(\"{}\")),\n",
                        v.name, wire
                    )),
                    (VariantKind::Unit, Some(tag)) => arms.push_str(&format!(
                        "Self::{} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{}\"), ::serde::Value::Str(::std::string::String::from(\"{}\")))]),\n",
                        v.name, tag, wire
                    )),
                    (VariantKind::Newtype, None) => arms.push_str(&format!(
                        "Self::{} (__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value(__f0))]),\n",
                        v.name, wire
                    )),
                    (VariantKind::Newtype, Some(_)) => panic!(
                        "serde stand-in derive: newtype variant `{}` in a tagged enum is not supported",
                        v.name
                    ),
                    (VariantKind::Struct(fields), tag) => {
                        let bindings = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            inner.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{tag}\"), ::serde::Value::Str(::std::string::String::from(\"{wire}\"))));\n"
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        let payload = if tag.is_some() {
                            "::serde::Value::Object(__fields)".to_owned()
                        } else {
                            format!(
                                "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{wire}\"), ::serde::Value::Object(__fields))])"
                            )
                        };
                        arms.push_str(&format!(
                            "Self::{} {{ {} }} => {{ {} {} }}\n",
                            v.name, bindings, inner, payload
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_fallback(f: &Field, container_default: bool, container: &str) -> String {
    if container_default {
        // Container-level `#[serde(default)]` fills gaps from the
        // *container's* `Default` value (real serde semantics), so structs
        // whose defaults differ from their field types' defaults — e.g. a
        // `bool` defaulting to `true` — deserialize correctly from partial
        // objects.
        format!("__container_default.{}", f.name)
    } else if f.default {
        "::std::default::Default::default()".to_owned()
    } else if f.is_option {
        "::std::option::Option::None".to_owned()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::new(\"missing field `{}` in `{}`\"))",
            f.name, container
        )
    }
}

/// Emits a struct-literal body reading `fields` from object value `src`.
fn named_fields_from(
    fields: &[Field],
    src: &str,
    container_default: bool,
    container: &str,
) -> String {
    let mut code = String::new();
    for f in fields {
        code.push_str(&format!(
            "{0}: match ::serde::Value::get({1}, \"{0}\") {{\n\
             ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             ::std::option::Option::None => {{ {2} }}\n\
             }},\n",
            f.name,
            src,
            field_fallback(f, container_default, container)
        ));
    }
    code
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::Tuple(_) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Named(fields) if c.attrs.transparent => format!(
            "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__value)? }})",
            fields[0].name
        ),
        Shape::Named(fields) => {
            let container_default = if c.attrs.default {
                format!("let __container_default: {name} = ::std::default::Default::default();\n")
            } else {
                String::new()
            };
            format!(
                "if ::serde::Value::as_object(__value).is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
                 \"expected object for `{name}`, got {{}}\", ::serde::Value::kind(__value))));\n\
                 }}\n\
                 {container_default}\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                named_fields_from(fields, "__value", c.attrs.default, name)
            )
        }
        Shape::Enum(variants) => gen_deserialize_enum(c, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(c: &Container, variants: &[Variant]) -> String {
    let name = &c.name;
    if let Some(tag) = &c.attrs.tag {
        // Internally tagged: { "<tag>": "variant", ...fields }.
        let mut arms = String::new();
        for v in variants {
            let wire = wire_name(&v.name, &c.attrs);
            match &v.kind {
                VariantKind::Unit => arms.push_str(&format!(
                    "\"{wire}\" => ::std::result::Result::Ok(Self::{}),\n",
                    v.name
                )),
                VariantKind::Newtype => panic!(
                    "serde stand-in derive: newtype variant `{}` in a tagged enum is not supported",
                    v.name
                ),
                VariantKind::Struct(fields) => arms.push_str(&format!(
                    "\"{wire}\" => ::std::result::Result::Ok(Self::{} {{\n{}\n}}),\n",
                    v.name,
                    named_fields_from(fields, "__value", false, name)
                )),
            }
        }
        return format!(
            "let __tag = ::serde::Value::get(__value, \"{tag}\")\n\
             .and_then(::serde::Value::as_str)\n\
             .ok_or_else(|| ::serde::Error::new(\"missing `{tag}` tag for `{name}`\"))?;\n\
             match __tag {{\n{arms}\
             __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
             \"unknown `{name}` variant `{{__other}}`\"))),\n}}"
        );
    }

    // Externally tagged: unit variants are strings, struct variants are
    // single-key objects.
    let mut unit_arms = String::new();
    let mut object_arms = String::new();
    for v in variants {
        let wire = wire_name(&v.name, &c.attrs);
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{wire}\" => return ::std::result::Result::Ok(Self::{}),\n",
                v.name
            )),
            VariantKind::Newtype => object_arms.push_str(&format!(
                "\"{wire}\" => return ::std::result::Result::Ok(Self::{}(::serde::Deserialize::from_value(__inner)?)),\n",
                v.name
            )),
            VariantKind::Struct(fields) => object_arms.push_str(&format!(
                "\"{wire}\" => return ::std::result::Result::Ok(Self::{} {{\n{}\n}}),\n",
                v.name,
                named_fields_from(fields, "__inner", false, name)
            )),
        }
    }
    let mut code = String::new();
    if !unit_arms.is_empty() {
        code.push_str(&format!(
            "if let ::std::option::Option::Some(__s) = ::serde::Value::as_str(__value) {{\n\
             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
             }}\n"
        ));
    }
    if !object_arms.is_empty() {
        code.push_str(&format!(
            "if let ::std::option::Option::Some([(__k, __inner)]) = ::serde::Value::as_object(__value) {{\n\
             match __k.as_str() {{\n{object_arms}_ => {{}}\n}}\n\
             }}\n"
        ));
    }
    code.push_str(&format!(
        "::std::result::Result::Err(::serde::Error::new(::std::format!(\n\
         \"unrecognized `{name}` value of kind {{}}\", ::serde::Value::kind(__value))))"
    ));
    code
}
