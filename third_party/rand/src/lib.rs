//! Offline stand-in for `rand`, covering the subset this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for simulation workloads (it is not
//! cryptographic, and neither is the workspace's use of it).

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`. The output type `T` is inferred
    /// from the call site (annotation or use), then drives the literal
    /// types in the range — same inference shape as real rand.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Standard-distribution sampling for [`Rng::gen`].
pub trait Standard {
    /// Samples one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[allow(clippy::cast_precision_loss)]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range expression usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Maps a raw 64-bit draw into `[0, span)` without modulo bias worth
/// caring about here (fixed-point multiply).
fn scale_u64(raw: u64, span: u64) -> u64 {
    ((u128::from(raw) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_exclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                let off = scale_u64(rng.next_u64(), span);
                ((lo as i128) + i128::from(off)) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = scale_u64(rng.next_u64(), span + 1);
                ((lo as i128) + i128::from(off)) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                Self::sample_exclusive(rng, lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Slice helpers (`rand::seq::SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(1.0e-9..1.0e3f64);
            assert!((1.0e-9..1.0e3).contains(&f));
            let u = rng.gen_range(0u64..17);
            assert!(u < 17);
            let i = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&i));
            let p: f64 = rng.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
