//! Test-runner configuration (`ProptestConfig`).

/// How many cases each property test runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}
