//! `any::<T>()` support for types with a canonical full-range strategy.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use rand::Rng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(0u64..=u64::from(u8::MAX)) as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
