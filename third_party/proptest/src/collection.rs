//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: a fixed size or a
/// (half-open / inclusive) range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (min, max) = r.into_inner();
        assert!(min <= max, "empty size range");
        Self { min, max }
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
