//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range strategies
//! over integers and floats, `Just`, tuple strategies, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, and `any::<bool>()`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs `cases` deterministic samples (seeded from the test's
//! module path, so runs are reproducible) and panics on the first failing
//! case via `prop_assert!`/`assert!`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Deterministic per-test RNG plumbing used by the [`proptest!`] macro.
pub mod rng {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Builds the RNG for one test case: seeded from the test's name so
    /// different tests explore different sequences, and from the case
    /// index so every case differs.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
    }
}

/// The commonly-imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::collection::vec;
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when the assumption fails. Without shrinking or
/// rejection bookkeeping, skipping is just an early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                for __case in 0..config.cases {
                    let mut __rng = $crate::rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    // One closure per case so prop_assume! can early-return.
                    let mut __one_case = || {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)*
                        $body
                    };
                    __one_case();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
