//! Value-generation strategies: how `x in <expr>` samples a value.

use crate::rng::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for sampling values of an associated type.
///
/// Mirrors proptest's `Strategy` closely enough for the workspace's tests:
/// the associated type is named `Value` and the combinators keep their
/// real names. Sampling is direct (no shrink trees).
pub trait Strategy {
    /// The type of sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each sampled value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident: $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);
