//! LLC walkthrough (paper Sec. IV-C): simulate SPEC-class benchmarks through
//! a real 16 MiB set-associative LLC, then evaluate every eNVM as a drop-in
//! replacement — including a write-buffer rescue for slow writers.
//!
//! Run with: `cargo run -p nvmx-bench --release --example llc_study`

use nvmexplorer_core::write_buffer::{evaluate_with_buffer, WriteBuffer};
use nvmx_celldb::tentpole;
use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
use nvmx_units::{Capacity, Meters};
use nvmx_viz::AsciiTable;
use nvmx_workloads::cache::spec2017_llc_traffic;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run the SPEC-class suite through the cache simulator.
    let suite = spec2017_llc_traffic(150_000, 7);
    println!(
        "simulated {} benchmarks through a 16 MiB / 16-way LLC:",
        suite.len()
    );
    for bench in suite.iter().take(4) {
        println!(
            "  {:<16} miss rate {:.2}, {:.2} GB/s array reads, {:.2} GB/s array writes",
            bench.name,
            bench.miss_rate,
            bench.traffic.read_bytes_per_sec / 1.0e9,
            bench.traffic.write_bytes_per_sec / 1.0e9,
        );
    }
    println!("  ...\n");

    // 2. Pick the most write-intensive benchmark and sweep the write-buffer
    //    design space for each candidate eNVM.
    let worst = suite
        .iter()
        .max_by(|a, b| {
            a.traffic
                .write_bytes_per_sec
                .total_cmp(&b.traffic.write_bytes_per_sec)
        })
        .expect("suite nonempty");
    println!("write-heaviest benchmark: {}\n", worst.name);

    let mut table = AsciiTable::new(vec![
        "cell".into(),
        "buffer".into(),
        "feasible".into(),
        "power".into(),
        "lifetime".into(),
    ]);
    for cell in tentpole::study_cells() {
        if !["STT-opt", "RRAM-opt", "FeFET-opt", "PCM-opt", "SRAM-16nm"]
            .contains(&cell.name.as_str())
        {
            continue;
        }
        let node = if cell.technology == nvmx_celldb::TechnologyClass::Sram {
            cell.default_node
        } else {
            Meters::from_nano(22.0)
        };
        let config = ArrayConfig {
            capacity: Capacity::from_mebibytes(16),
            word_bits: 512, // 64 B cache line
            node,
            bits_per_cell: nvmx_units::BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
        };
        let array = characterize(&cell, &config)?;
        for (label, buffer) in [("no buffer".to_owned(), WriteBuffer::NONE)]
            .into_iter()
            .chain(std::iter::once((
                "mask + coalesce 50%".to_owned(),
                WriteBuffer::new(1.0, 0.5),
            )))
        {
            let eval = evaluate_with_buffer(&array, &worst.traffic, buffer);
            table.row(vec![
                cell.name.clone(),
                label,
                eval.is_feasible().to_string(),
                format!("{}", eval.total_power()),
                if eval.lifetime_years().is_finite() {
                    format!("{:.1e} yr", eval.lifetime_years())
                } else {
                    "unlimited".into()
                },
            ]);
        }
    }
    println!("{table}");
    println!("A write buffer rescues slow writers and stretches endurance-limited lifetimes.");
    Ok(())
}
