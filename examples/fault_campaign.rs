//! Fault & reliability campaigns on the streaming engine: a study config
//! with a `fault` section runs the base sweep as usual, then sweeps every
//! expanded fault model — per-technology BERs at each requested
//! temperature and programming depth, plus raw-BER points — through
//! seeded injection trials against the shared int8 classifier, streaming
//! typed events (`fault_trial_produced`, `accuracy_degraded`,
//! `fault_study_finished`) to the same sinks as any other study.
//!
//! Run with: `cargo run -p nvmexplorer --release --example fault_campaign`
//!
//! The JSONL event stream lands under `NVMX_OUT` (default `output/`) as
//! `fault_campaign_events.jsonl`; the terminal shows the per-model
//! accuracy verdict table.
//!
//! Determinism is the point: each trial's RNG seed is
//! `injection_seed(campaign_seed, slot)` with
//! `slot = model_index × trials + trial`, so the trial set is a pure
//! function of the config — identical at any thread count, shard layout,
//! or worker respawn schedule (the distributed runner carries the seed on
//! the wire). This example proves the thread-count half of that claim
//! directly.

use nvmexplorer_core::config::{FaultSpec, FaultStudyConfig, OutputSpec, StudyConfig, TrafficSpec};
use nvmexplorer_core::stream::{NullSink, StudyExecutor};
use nvmx_units::BitsPerCell;
use nvmx_viz::sink::SpecSinks;
use nvmx_workloads::TrafficPattern;

fn campaign() -> FaultStudyConfig {
    let out = std::env::var("NVMX_OUT").unwrap_or_else(|_| "output".into());
    FaultStudyConfig {
        study: StudyConfig {
            name: "fault_campaign".into(),
            cells: Default::default(),
            array: Default::default(),
            traffic: TrafficSpec::Explicit {
                patterns: vec![TrafficPattern::new(
                    "1 GB/s reads + 10 MB/s writes",
                    1.0e9,
                    1.0e7,
                    64,
                )],
            },
            constraints: Default::default(),
            output: OutputSpec {
                csv: None,
                jsonl: Some(format!("{out}/fault_campaign_events.jsonl")),
                summary: true,
            },
            store: Default::default(),
        },
        fault: FaultSpec {
            trials: 3,
            seed: 2022,
            bits_per_cell: vec![BitsPerCell::Slc],
            temperatures_c: vec![25.0, 85.0],
            raw_bers: vec![1.0e-3],
            tolerance: 0.05,
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = campaign();
    let mut sinks = SpecSinks::new(&campaign.study.output)?;
    let result = StudyExecutor::new().run_fault(&campaign, &mut sinks)?;

    println!(
        "base study: {} arrays, {} evaluations; fault phase: {} models, {} trials, {} degraded",
        result.study.arrays.len(),
        result.study.evaluations.len(),
        result.fault.stats.models,
        result.fault.stats.trials,
        result.fault.stats.degraded,
    );

    // The worst degradation in the campaign, with the seed that reproduces
    // its worst trial in isolation.
    if let Some(worst) = result
        .fault
        .reports
        .iter()
        .max_by(|a, b| a.report.degradation().total_cmp(&b.report.degradation()))
    {
        let trial = result
            .fault
            .trials
            .iter()
            .filter(|t| t.model_index == worst.model_index)
            .min_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            .expect("every model has trials");
        println!(
            "worst model: {} ({} at {:.0} C, BER {:.2e}) — mean accuracy {:.4} vs baseline {:.4}; worst trial flipped {} of {} bits (seed {})",
            worst.cell,
            worst.bits_per_cell,
            worst.temperature_c,
            worst.report.bit_error_rate,
            worst.report.mean,
            worst.report.baseline,
            trial.bits_flipped,
            trial.bits_total,
            trial.injection_seed,
        );
    }

    // Thread-count invariance: the same campaign on 1 thread produces the
    // identical trial set, verdicts, and stats — the property that lets
    // the distributed runner shard, kill, stall, respawn, and still replay
    // byte-identically.
    let single = StudyExecutor::with_threads(1).run_fault(&campaign, &mut NullSink)?;
    assert_eq!(result, single, "fault campaigns are deterministic");
    println!("re-run at 1 thread: identical trial-for-trial");
    Ok(())
}
