//! DNN-accelerator walkthrough (paper Sec. IV-A): provision eNVM weight
//! buffers for ResNet26 at 60 FPS, check fault-rate accuracy gates, and
//! compare continuous power against intermittent energy per inference.
//!
//! Run with: `cargo run -p nvmx-bench --release --example dnn_accelerator`

use nvmexplorer_core::accuracy::accuracy_under_storage;
use nvmexplorer_core::eval::evaluate;
use nvmexplorer_core::intermittent::{daily_energy, IntermittentScenario};
use nvmx_celldb::tentpole;
use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
use nvmx_units::{BitsPerCell, Capacity, Meters};
use nvmx_viz::AsciiTable;
use nvmx_workloads::dnn::{resnet26, DnnUseCase, StoragePolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let use_case = DnnUseCase::single(resnet26(), StoragePolicy::WeightsOnly);
    println!(
        "{}: {:.2} MiB of weights, {:.1} MB read per inference",
        use_case.name,
        use_case.stored_weight_bytes() as f64 / 1024.0 / 1024.0,
        use_case.read_bytes_per_inference() / 1.0e6,
    );

    let traffic = use_case.continuous_traffic(60.0);
    println!(
        "continuous 60 FPS traffic: {:.2} GB/s reads\n",
        traffic.read_bytes_per_sec / 1.0e9
    );

    let scenario = IntermittentScenario {
        name: use_case.name.clone(),
        read_bytes_per_event: use_case.read_bytes_per_inference(),
        write_bytes_per_event: 0.0,
        weight_bytes: use_case.stored_weight_bytes(),
        access_bytes: 32,
    };

    let mut table = AsciiTable::new(vec![
        "cell".into(),
        "60FPS power".into(),
        "feasible".into(),
        "SLC accuracy ok".into(),
        "energy/inf @1IPS".into(),
    ]);

    for cell in tentpole::study_cells() {
        let node = if cell.technology == nvmx_celldb::TechnologyClass::Sram {
            cell.default_node
        } else {
            Meters::from_nano(22.0)
        };
        let config = ArrayConfig {
            capacity: Capacity::from_mebibytes(2),
            word_bits: 256,
            node,
            bits_per_cell: BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
        };
        let array = characterize(&cell, &config)?;
        let eval = evaluate(&array, &traffic);
        let accuracy_ok = cell.technology == nvmx_celldb::TechnologyClass::Sram
            || accuracy_under_storage(&cell, BitsPerCell::Slc, 2).is_acceptable(0.05);
        let intermittent = daily_energy(&array, &scenario, 86_400.0);
        table.row(vec![
            cell.name.clone(),
            format!("{}", eval.total_power()),
            eval.is_feasible().to_string(),
            accuracy_ok.to_string(),
            format!("{}", intermittent.per_event()),
        ]);
    }
    println!("{table}");
    println!(
        "Note how the continuous-power winner and the intermittent-energy winner \
         differ — the paper's core cross-stack observation."
    );
    Ok(())
}
