//! Streaming + scheduling: queue three studies, shard them over one warm
//! subarray cache, and stream every result incrementally to CSV and JSONL
//! while the sweeps run — the serving pattern for batched exploration
//! campaigns, where materializing whole studies in memory does not scale.
//!
//! Run with: `cargo run -p nvmexplorer --release --example streaming_study`
//!
//! Outputs land under `NVMX_OUT` (default `output/`):
//! `<study>_stream.csv` (one row per evaluation, written as evaluations
//! complete) and `<study>_events.jsonl` (the full deterministic event
//! stream).

use nvmexplorer_core::config::{ArraySettings, StudyConfig, TrafficSpec};
use nvmexplorer_core::scheduler::StudyScheduler;
use nvmexplorer_core::stream::{NullSink, ResultSink};
use nvmx_nvsim::{OptimizationTarget, SubarrayCache};
use nvmx_units::BitsPerCell;
use nvmx_viz::sink::SpecSinks;

/// One slice of a capacity-axis exploration campaign: same cells, same
/// traffic family, different buffer sizes — exactly the shape where a
/// shared cache pays off.
fn campaign_study(name: &str, capacities_mib: Vec<u64>) -> StudyConfig {
    let out = std::env::var("NVMX_OUT").unwrap_or_else(|_| "output".into());
    StudyConfig {
        name: name.into(),
        cells: Default::default(),
        array: ArraySettings {
            capacities_mib,
            bits_per_cell: vec![BitsPerCell::Slc, BitsPerCell::Mlc2],
            targets: vec![OptimizationTarget::ReadEdp, OptimizationTarget::Area],
            ..ArraySettings::default()
        },
        traffic: TrafficSpec::GenericSweep {
            read_min: 1.0e9,
            read_max: 10.0e9,
            read_steps: 3,
            write_min: 1.0e6,
            write_max: 100.0e6,
            write_steps: 3,
            access_bytes: 8,
        },
        constraints: Default::default(),
        output: nvmexplorer_core::config::OutputSpec {
            csv: Some(format!("{out}/{name}_stream.csv")),
            jsonl: Some(format!("{out}/{name}_events.jsonl")),
            summary: false,
        },
        store: Default::default(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queue = vec![
        campaign_study("campaign_small", vec![1, 2]),
        campaign_study("campaign_medium", vec![2, 4]),
        campaign_study("campaign_large", vec![4, 8]),
    ];

    // One warm cache serves the whole queue: subarray physics depends on
    // (cell, node, geometry, depth) — never on capacity — so later studies
    // mostly reuse what earlier ones characterized.
    let cache = SubarrayCache::new();
    let report = StudyScheduler::new().lanes(2).run_queue_with(
        &queue,
        &cache,
        |_, study| -> Box<dyn ResultSink> {
            match SpecSinks::new(&study.output) {
                Ok(sinks) => Box::new(sinks),
                Err(e) => {
                    eprintln!(
                        "{}: cannot open output sinks ({e}); running silent",
                        study.name
                    );
                    Box::new(NullSink)
                }
            }
        },
    );

    for outcome in &report.outcomes {
        match &outcome.result {
            Ok(result) => println!(
                "{}: {} arrays, {} evaluations streamed (cache hit rate while running: {:.1}%)",
                outcome.name,
                result.arrays.len(),
                result.evaluations.len(),
                outcome.cache_hit_rate() * 100.0
            ),
            Err(e) => eprintln!("{}: failed: {e}", outcome.name),
        }
    }
    println!(
        "queue done: {} studies, cross-study cache totals: {} lookups, {:.1}% hits",
        report.outcomes.len(),
        report.cache.lookups(),
        report.cache.hit_rate() * 100.0
    );
    assert!(report.all_succeeded());
    Ok(())
}
