//! Quickstart: compare eNVM technologies as a 2 MB on-chip buffer under a
//! simple traffic pattern, stream the study through a result sink, filter
//! to feasible designs, and print the leaderboard.
//!
//! Run with: `cargo run -p nvmexplorer --release --example quickstart`

use nvmexplorer_core::config::{StudyConfig, TrafficSpec};
use nvmexplorer_core::explore::{Objective, ResultSet};
use nvmexplorer_core::stream::StudyExecutor;
use nvmx_viz::sink::SummaryTableSink;
use nvmx_viz::AsciiTable;
use nvmx_workloads::TrafficPattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the study: default cell selection (all validated
    //    tentpoles + reference RRAM + 16 nm SRAM), default array settings
    //    (2 MiB, 22 nm, SLC, ReadEDP-optimized), one traffic pattern.
    let study = StudyConfig {
        name: "quickstart".into(),
        cells: Default::default(),
        array: Default::default(),
        traffic: TrafficSpec::Explicit {
            patterns: vec![TrafficPattern::new(
                "1 GB/s reads + 10 MB/s writes",
                1.0e9,
                10.0e6,
                64,
            )],
        },
        constraints: Default::default(),
        output: Default::default(),
        store: Default::default(),
    };

    // The same study serializes to the JSON the paper's artifact uses.
    println!("study config as JSON:\n{}\n", study.to_json());

    // 2. Run through the streaming executor: every characterization and
    //    evaluation is pushed to the sink as its slot completes (here a
    //    summary table straight to stdout — CsvSink/JsonlSink stream full
    //    results to disk the same way), and the assembled StudyResult
    //    comes back for in-process exploration.
    let mut summary = SummaryTableSink::new(std::io::stdout());
    let result = StudyExecutor::new().run(&study, &mut summary)?;
    println!(
        "characterized {} arrays ({} skipped), {} evaluations\n",
        result.arrays.len(),
        result.skipped.len(),
        result.evaluations.len()
    );

    // 3. Explore: keep feasible designs, rank by total power.
    let set = ResultSet::new(result.evaluations).feasible();
    let mut table = AsciiTable::new(vec![
        "rank".into(),
        "cell".into(),
        "total power".into(),
        "read latency".into(),
        "density Mb/mm^2".into(),
        "lifetime".into(),
    ]);
    for (i, eval) in set.leaderboard(Objective::TotalPower).iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            eval.array.cell_name.clone(),
            format!("{}", eval.total_power()),
            format!("{}", eval.array.read_latency),
            format!("{:.0}", eval.array.density_mbit_per_mm2()),
            if eval.lifetime_years().is_finite() {
                format!("{:.1e} yr", eval.lifetime_years())
            } else {
                "unlimited".into()
            },
        ]);
    }
    println!("{table}");

    let best = set
        .best(Objective::TotalPower)
        .expect("some design is feasible");
    println!(
        "lowest-power feasible design: {} at {}",
        best.array.cell_name,
        best.total_power()
    );
    Ok(())
}
