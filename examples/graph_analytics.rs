//! Graph-analytics walkthrough (paper Sec. IV-B): run instrumented BFS and
//! PageRank over a synthetic social graph, convert access counts into
//! scratchpad traffic, and ask which eNVM can replace an 8 MB eDRAM
//! scratchpad.
//!
//! Run with: `cargo run -p nvmx-bench --release --example graph_analytics`

use nvmexplorer_core::eval::evaluate;
use nvmx_celldb::tentpole;
use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
use nvmx_units::{Capacity, Meters};
use nvmx_viz::AsciiTable;
use nvmx_workloads::graph::{accelerator_traffic, facebook_like};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the workload for real: a scale-free social graph and two
    //    instrumented kernels.
    let graph = facebook_like(42);
    println!(
        "{}: {} nodes, {} edges",
        graph.name,
        graph.num_nodes(),
        graph.num_edges()
    );

    let (visited, bfs_counter) = graph.bfs(0);
    println!(
        "BFS visited {visited} nodes: {} reads / {} writes",
        bfs_counter.reads, bfs_counter.writes
    );
    let (_ranks, pr_counter) = graph.pagerank(5);
    println!(
        "PageRank x5: {} reads / {} writes\n",
        pr_counter.reads, pr_counter.writes
    );

    // 2. Convert to scratchpad traffic at Graphicionado-class throughput.
    let traffic = accelerator_traffic(&graph, "BFS", bfs_counter, 2.0e8);
    println!(
        "{}: {:.2} GB/s reads, {:.0} MB/s writes\n",
        traffic.name,
        traffic.read_bytes_per_sec / 1.0e9,
        traffic.write_bytes_per_sec / 1.0e6
    );

    // 3. Which 8 MB eNVM arrays can serve it, and at what power/lifetime?
    let mut table = AsciiTable::new(vec![
        "cell".into(),
        "power".into(),
        "feasible".into(),
        "aggregate latency".into(),
        "lifetime".into(),
    ]);
    for cell in tentpole::study_cells() {
        let node = if cell.technology == nvmx_celldb::TechnologyClass::Sram {
            cell.default_node
        } else {
            Meters::from_nano(22.0)
        };
        let config = ArrayConfig {
            capacity: Capacity::from_mebibytes(8),
            word_bits: 64,
            node,
            bits_per_cell: nvmx_units::BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
        };
        let array = characterize(&cell, &config)?;
        let eval = evaluate(&array, &traffic);
        table.row(vec![
            cell.name.clone(),
            format!("{}", eval.total_power()),
            eval.is_feasible().to_string(),
            format!("{}", eval.aggregate_latency),
            if eval.lifetime_years().is_finite() {
                format!("{:.1e} yr", eval.lifetime_years())
            } else {
                "unlimited".into()
            },
        ]);
    }
    println!("{table}");
    println!(
        "Slow writers (FeFET, pessimistic PCM) stumble on the scatter-stream write \
         traffic; RRAM's endurance caps its lifetime — the paper's Fig. 8 story."
    );
    Ok(())
}
