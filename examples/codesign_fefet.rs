//! Device/architecture co-design walkthrough (paper Sec. V-A): define a
//! custom cell — the back-gated FeFET — and quantify what its faster writes
//! and higher endurance buy at the application level.
//!
//! Run with: `cargo run -p nvmx-bench --release --example codesign_fefet`

use nvmexplorer_core::eval::evaluate;
use nvmx_celldb::custom::{back_gated_fefet, sram_16nm};
use nvmx_celldb::{tentpole, CellDefinition, CellFlavor, TechnologyClass};
use nvmx_nvsim::{characterize, ArrayConfig, OptimizationTarget};
use nvmx_units::{Amps, Capacity, Meters, Seconds, Volts};
use nvmx_viz::AsciiTable;
use nvmx_workloads::TrafficPattern;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any cell can be built from scratch with the builder — here is a
    // hypothetical "improved RRAM" with a faster, lower-current write.
    let improved_rram = CellDefinition::builder(TechnologyClass::Rram, "RRAM-codesign")
        .area_f2(18.0)
        .write_pulse(Seconds::from_nano(20.0))
        .write_voltage(Volts::new(1.8))
        .write_current(Amps::from_micro(40.0))
        .endurance(1.0e9)
        .build();

    // The paper's co-design cell: back-gated FeFET (10 ns writes, 1e12
    // endurance, slight read-energy/density cost).
    let cells = vec![
        sram_16nm(),
        tentpole::tentpole_cell(TechnologyClass::FeFet, CellFlavor::Optimistic).expect("FeFET"),
        back_gated_fefet(),
        improved_rram,
    ];

    // Write-heavy scratchpad traffic that standard FeFETs cannot serve.
    let traffic = TrafficPattern::new("write-heavy graph", 2.0e9, 300.0e6, 8);

    let mut table = AsciiTable::new(vec![
        "cell".into(),
        "write latency".into(),
        "endurance".into(),
        "feasible".into(),
        "power".into(),
        "lifetime".into(),
    ]);
    for cell in &cells {
        let node = if cell.technology == TechnologyClass::Sram {
            cell.default_node
        } else {
            Meters::from_nano(22.0)
        };
        let config = ArrayConfig {
            capacity: Capacity::from_mebibytes(8),
            word_bits: 64,
            node,
            bits_per_cell: nvmx_units::BitsPerCell::Slc,
            target: OptimizationTarget::ReadEdp,
        };
        let array = characterize(cell, &config)?;
        let eval = evaluate(&array, &traffic);
        table.row(vec![
            cell.name.clone(),
            format!("{}", array.write_latency),
            format!("{:.0e}", cell.endurance_cycles),
            eval.is_feasible().to_string(),
            format!("{}", eval.total_power()),
            if eval.lifetime_years().is_finite() {
                format!("{:.1e} yr", eval.lifetime_years())
            } else {
                "unlimited".into()
            },
        ]);
    }
    println!("{table}");
    println!(
        "The back-gated FeFET keeps FeFET's density and idle power while fixing the \
         write path — the co-design feedback loop the paper advocates."
    );
    Ok(())
}
