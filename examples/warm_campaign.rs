//! Warm-start campaign: queue two studies that sweep the same array design
//! points under different traffic, sharing one subarray cache *and* one
//! incumbent store. Study 1 runs cold and records each design point's
//! winning incumbents; study 2's branch-and-bound scans start from those
//! winners, so its bounds prune nearly every candidate immediately.
//! Results are byte-identical either way — only the prune rate moves.
//!
//! Run with: `cargo run -p nvmexplorer --release --example warm_campaign`

use nvmexplorer_core::config::{ArraySettings, StudyConfig, TrafficSpec};
use nvmexplorer_core::scheduler::StudyScheduler;
use nvmx_nvsim::{IncumbentStore, OptimizationTarget, SubarrayCache};
use nvmx_units::BitsPerCell;

/// Two phases of one exploration campaign: identical design points (cells,
/// capacities, depths, targets), different traffic envelopes. Incumbent
/// seeds key on the design point — traffic never enters the DSE — so the
/// second study is fully warm.
fn phase(name: &str, read_max: f64, write_max: f64) -> StudyConfig {
    StudyConfig {
        name: name.into(),
        cells: Default::default(),
        array: ArraySettings {
            capacities_mib: vec![1, 2, 4],
            bits_per_cell: vec![BitsPerCell::Slc, BitsPerCell::Mlc2],
            targets: OptimizationTarget::ALL.to_vec(),
            ..ArraySettings::default()
        },
        traffic: TrafficSpec::GenericSweep {
            read_min: 1.0e8,
            read_max,
            read_steps: 4,
            write_min: 1.0e6,
            write_max,
            write_steps: 4,
            access_bytes: 64,
        },
        constraints: Default::default(),
        output: Default::default(),
        store: Default::default(),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let queue = vec![
        phase("phase1_read_heavy", 20.0e9, 50.0e6),
        phase("phase2_write_heavy", 5.0e9, 500.0e6),
    ];

    // One lane: studies run in queue order, so phase 2 is deterministically
    // warm. (More lanes still give identical results; only the measured
    // warm/cold split would depend on interleaving.)
    let cache = SubarrayCache::new();
    let seeds = IncumbentStore::new();
    let report = StudyScheduler::new()
        .lanes(1)
        .run_queue_seeded(&queue, &cache, &seeds);

    println!("warm-start campaign over {} studies:\n", queue.len());
    let mut cold_rate = None;
    for outcome in &report.outcomes {
        let result = match &outcome.result {
            Ok(result) => result,
            Err(e) => {
                eprintln!("{}: failed ({e})", outcome.name);
                continue;
            }
        };
        // `outcome.cache` is this study's slice of the shared cache
        // counters (`CacheStats::since` under the hood).
        let stats = &outcome.cache;
        println!(
            "  {:<20} {:>4} arrays, {:>4} evaluations | candidates {:>6}: \
             {:>5.1}% pruned, {:>5.1}% cache hits",
            outcome.name,
            result.arrays.len(),
            result.evaluations.len(),
            stats.candidates(),
            stats.prune_rate() * 100.0,
            stats.hit_rate() * 100.0,
        );
        match cold_rate {
            None => cold_rate = Some(stats.prune_rate()),
            Some(cold) => {
                println!(
                    "{:>45} warm-start delta: +{:.1} points over the cold pass",
                    "",
                    (stats.prune_rate() - cold) * 100.0
                );
            }
        }
    }

    let seed_stats = seeds.stats();
    println!(
        "\nincumbent store: {} design-point seeds recorded, {} scans seeded",
        seed_stats.recorded, seed_stats.seeded_scans
    );
    Ok(())
}
